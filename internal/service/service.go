// Package service turns the igpart pipeline into a long-running job
// engine: partition-as-a-service. It provides
//
//   - a bounded worker pool (default GOMAXPROCS workers) fed by a
//     bounded queue with explicit-rejection backpressure (Submit fails
//     fast with ErrQueueFull instead of blocking — the caller, e.g.
//     cmd/igpartd, maps that to HTTP 429);
//   - a job lifecycle (queued → running → done/failed/cancelled) with
//     per-job deadlines and cooperative cancellation, built on the
//     context threading through igpart.IGMatch/MultilevelIGMatch down
//     into the sweep shards and Lanczos cycles;
//   - a content-addressed LRU result cache: the pipeline is a pure
//     deterministic function of (netlist, options), so results are
//     keyed by SHA-256 of the canonicalized netlist plus the normalized
//     result-determining options, with hit/miss/eviction counters in
//     the internal/obs registry;
//   - graceful drain: Shutdown stops intake, lets queued and running
//     jobs finish, and only cancels them if its own context expires.
//
// The engine is transport-agnostic; cmd/igpartd exposes it over HTTP.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"igpart"
	"igpart/internal/fault"
	"igpart/internal/hypergraph"
	"igpart/internal/obs"
)

// State is a job's lifecycle phase.
type State string

// The job lifecycle. Queued and Running are transient; the other three
// are terminal and frozen once reached.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors returned by the engine.
var (
	// ErrQueueFull is the backpressure signal: the queue is at capacity
	// and the job was rejected, not enqueued.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShutdown is returned by Submit after Shutdown has begun and is
	// the cancel cause applied to jobs a timed-out drain abandons.
	ErrShutdown = errors.New("service: engine shutting down")
	// ErrCancelled is the cancel cause of a user-requested Cancel.
	ErrCancelled = errors.New("service: job cancelled")
	// ErrUnknownBase rejects a delta submission naming a job the engine
	// does not know (expired, pruned, or never existed). cmd/igpartd
	// maps it to HTTP 404.
	ErrUnknownBase = errors.New("service: unknown base job")
	// ErrNotWarmStartable rejects a delta submission whose base job
	// cannot seed a warm start: not done yet, failed, or solved by an
	// algorithm that leaves no net ordering behind. cmd/igpartd maps it
	// to HTTP 409 — the request may become valid once the base finishes.
	ErrNotWarmStartable = errors.New("service: base job not warm-startable")
)

// Config sizes an Engine. The zero value is production-usable.
type Config struct {
	// Workers is the solver pool size. Default GOMAXPROCS. Each solve
	// may itself shard its sweep (Options.Parallelism), so a loaded
	// daemon typically wants Parallelism=1 jobs and Workers=GOMAXPROCS,
	// or few workers and parallel sweeps — both are supported.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it fail with ErrQueueFull. Default 64.
	QueueDepth int
	// CacheEntries sizes the content-addressed result cache. Default
	// 128; negative disables caching.
	CacheEntries int
	// DefaultTimeout is the per-job deadline applied when a request
	// carries none. 0 means no deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps per-request timeouts (and the default). 0 means
	// uncapped.
	MaxTimeout time.Duration
	// MaxFinished bounds how many terminal jobs stay queryable; the
	// oldest are forgotten first. Default 1024.
	MaxFinished int
	// Metrics receives the engine's counters and gauges (jobs by
	// outcome, queue rejections, cache hits/misses/evictions). Nil gets
	// a private registry, still reachable via Engine.Metrics.
	Metrics *obs.Registry
	// RetryAttempts bounds how many times a failed solve runs in total
	// (first try included). Default 2 — one retry; negative disables
	// retrying. Retrying is safe because a solve is a pure function of
	// the request and successful results are published to the cache.
	RetryAttempts int
	// RetryBaseDelay and RetryMaxDelay shape the capped exponential
	// backoff between attempts (base·2^(n−1), capped, with
	// deterministic jitter). Defaults 50ms and 2s.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// DegradedQueueFrac is the queue occupancy (0..1] at which Health
	// reports degraded readiness. Default 0.8.
	DegradedQueueFrac float64
	// DegradedPanicStreak is the number of consecutive panicking solves
	// that flips readiness to degraded. Default 3.
	DegradedPanicStreak int
	// Fault arms deterministic fault-injection points in the engine
	// (worker.panic inside the solve barrier, cache.evict-storm on cache
	// stores) and is forwarded to the pipeline for eigen.noconverge and
	// sweep.slow-shard. Nil — the production default — disarms
	// everything at zero cost.
	Fault *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.MaxFinished <= 0 {
		c.MaxFinished = 1024
	}
	if c.Metrics == nil {
		c.Metrics = new(obs.Registry)
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 2
	}
	if c.RetryAttempts < 1 {
		c.RetryAttempts = 1
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 2 * time.Second
	}
	if c.DegradedQueueFrac <= 0 || c.DegradedQueueFrac > 1 {
		c.DegradedQueueFrac = 0.8
	}
	if c.DegradedPanicStreak <= 0 {
		c.DegradedPanicStreak = 3
	}
	return c
}

// Result is the output of a completed job.
type Result struct {
	// Algo is the normalized algorithm that produced the result.
	Algo string
	// Metrics is the partition quality (net cut, sides, ratio cut).
	Metrics igpart.Metrics
	// Sides is the per-module side assignment.
	Sides []igpart.Side
	// Lambda2 is the IG Laplacian's second eigenvalue (AlgoIGMatch).
	Lambda2 float64
	// BestRank is the winning sweep split (AlgoIGMatch).
	BestRank int
	// NetOrder is the winning net ordering of the sweep, kept so PATCH
	// deltas can warm-start from the cached result. Engine-internal:
	// the HTTP layer never serializes it.
	NetOrder []int
	// Winner is the winning contender of an AlgoPortfolio race.
	Winner string
	// Warm reports that an ECO delta job re-solved through the windowed
	// warm start; false on delta jobs means the cold fallback ran.
	Warm bool
	// TouchedNets is the delta perturbation size of an ECO delta job.
	TouchedNets int
	// Levels and CoarsestNets describe the V-cycle actually built
	// (AlgoMultilevel).
	Levels       int
	CoarsestNets int
	// The fields below describe a balanced k-way result
	// (AlgoKWay/AlgoKWaySpectral); Parts is non-nil exactly then.
	Parts        []int // per-module part index in [0, K)
	K            int   // parts delivered
	Cap          int   // per-part module ceiling ⌈(1+ε)·n/K⌉ enforced
	PartSizes    []int
	SpanningNets int
	Connectivity int     // Σ over nets of (parts spanned − 1)
	RatioValue   float64 // Σ_i ext(V_i)/|V_i|
	// Stages is the solve's stage-span tree, recorded when the result
	// was computed. Cache hits return the original tree — a cached job
	// has no solve spans of its own.
	Stages obs.Stage
}

// Snapshot is an immutable view of a job's externally visible state.
type Snapshot struct {
	ID        string
	State     State
	Cached    bool
	Err       error
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Result is non-nil exactly when State == StateDone. It is shared
	// with the cache and must be treated as read-only.
	Result *Result
}

// warmSpec carries what an ECO delta job needs beyond its Request: the
// base netlist, the cached sweep state to warm-start from, and the
// delta itself. The job's Request.Netlist holds the applied (delta'd)
// netlist so the job can in turn base further deltas.
type warmSpec struct {
	baseID string
	base   *igpart.Netlist
	order  []int
	rank   int
	delta  igpart.NetlistDelta
}

// Job is a submitted partitioning request tracked by the engine.
type Job struct {
	id  string
	req Request
	// key is the precomputed cache key for jobs whose key is not
	// cacheKey(req.Netlist, req.Options) — delta jobs key on
	// (base hash, canonical delta) instead. Empty means compute.
	key string
	// warm is non-nil exactly for ECO delta jobs.
	warm *warmSpec

	ctx       context.Context
	cancel    context.CancelCauseFunc
	stopTimer context.CancelFunc

	done chan struct{}

	mu        sync.Mutex
	state     State
	cached    bool
	res       *Result
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// ID returns the engine-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns the job's current externally visible state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:        j.id,
		State:     j.state,
		Cached:    j.cached,
		Err:       j.err,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Result:    j.res,
	}
}

// Wait blocks until the job is terminal or ctx fires, returning the
// snapshot either way.
func (j *Job) Wait(ctx context.Context) Snapshot {
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return j.Snapshot()
}

// tryStart moves queued → running; it fails when the job was cancelled
// (or deadline-expired) while still queued.
func (j *Job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued || j.ctx.Err() != nil {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish freezes the job in a terminal state and reports whether this
// call performed the transition. Later calls are no-ops, which makes
// completion/cancellation races safe — whoever transitions first wins,
// and only the winner updates the outcome counters.
func (j *Job) finish(state State, res *Result, cached bool, err error) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.res = res
	j.cached = cached
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	j.stopTimer()
	j.cancel(nil)
	close(j.done)
	return true
}

// Engine is the partition job engine: worker pool, bounded queue,
// result cache, and job registry.
type Engine struct {
	cfg   Config
	reg   *obs.Registry
	cache *lru
	queue chan *Job
	wg    sync.WaitGroup

	// solveFn computes a request's result; tests substitute a stub to
	// exercise lifecycle paths deterministically.
	solveFn func(ctx context.Context, req Request, o Options) (*Result, error)
	// solveDeltaFn computes an ECO delta job's result by warm start;
	// same test seam as solveFn.
	solveDeltaFn func(ctx context.Context, ws *warmSpec, o Options) (*Result, error)
	// clock paces retry backoff; tests substitute a fake.
	clock clock

	mu          sync.Mutex
	closed      bool
	nextID      int64
	jobs        map[string]*Job
	finished    []string // terminal job IDs, oldest first, for pruning
	panicStreak int      // consecutive panicking solves, for Health
}

// New starts an engine with cfg's worker pool running.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:   cfg,
		reg:   cfg.Metrics,
		cache: newLRU(cfg.CacheEntries, cfg.Metrics, cfg.Fault),
		queue: make(chan *Job, cfg.QueueDepth),
		clock: realClock{},
		jobs:  make(map[string]*Job),
	}
	// The solve closure binds the engine's injector so the pipeline's
	// own points (eigen.noconverge, sweep.slow-shard) share one stream.
	e.solveFn = func(ctx context.Context, req Request, o Options) (*Result, error) {
		return solve(ctx, req, o, cfg.Fault, e.reg)
	}
	e.solveDeltaFn = func(ctx context.Context, ws *warmSpec, o Options) (*Result, error) {
		return solveDelta(ctx, ws, o, cfg.Fault, e.reg)
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Metrics returns the engine's metrics registry.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// CacheLen returns the number of cached results.
func (e *Engine) CacheLen() int { return e.cache.len() }

// Submit validates and enqueues a request. It never blocks: a full
// queue rejects with ErrQueueFull (backpressure), an engine that began
// shutting down rejects with ErrShutdown.
func (e *Engine) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	norm, err := req.Options.normalize()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	req.Options = norm
	return e.enqueue(req, "", nil)
}

// SubmitDelta enqueues an incremental ECO re-partitioning of a finished
// job: delta d is applied to the base job's netlist and solved by
// warm-starting from the base result's cached net ordering (sweep +
// completion only — no eigensolve), falling back to a cold solve past
// the perturbation threshold. The delta job is a first-class job: same
// queue, lifecycle, retry, and cache machinery, with its own cache
// entry keyed on (base netlist hash, canonical delta, options) so
// equivalent re-submissions hit. Its result carries the new net
// ordering, so further deltas may chain off it.
func (e *Engine) SubmitDelta(baseID string, d igpart.NetlistDelta, timeout time.Duration) (*Job, error) {
	if timeout < 0 {
		return nil, badf("negative timeout %v", timeout)
	}
	base, ok := e.Get(baseID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBase, baseID)
	}
	snap := base.Snapshot()
	if snap.State != StateDone || snap.Result == nil {
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotWarmStartable, baseID, snap.State)
	}
	res := snap.Result
	if len(res.NetOrder) == 0 || res.BestRank < 1 {
		return nil, fmt.Errorf("%w: %s result (algo %s) carries no net ordering",
			ErrNotWarmStartable, baseID, res.Algo)
	}
	bh := base.req.Netlist
	if err := d.Validate(bh); err != nil {
		return nil, badf("invalid delta: %v", err)
	}
	o := base.req.Options
	o.Algo = AlgoIGMatch
	o.Levels, o.CoarseningRatio = 0, 0
	o.K, o.Eps, o.Fix = 0, 0, nil
	o.Budget, o.Accept = 0, 0
	o.Timeout = timeout
	applied, _ := d.Apply(bh)
	return e.enqueue(Request{Netlist: applied, Options: o}, deltaCacheKey(bh, d, o), &warmSpec{
		baseID: baseID,
		base:   bh,
		order:  res.NetOrder,
		rank:   res.BestRank,
		delta:  d,
	})
}

// enqueue builds the job for an already-validated, normalized request
// and offers it to the queue. key overrides the content-address for
// jobs not keyed on their own netlist (delta jobs); ws marks the job
// as an ECO warm start.
func (e *Engine) enqueue(req Request, key string, ws *warmSpec) (*Job, error) {
	timeout := req.Options.Timeout
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	if e.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > e.cfg.MaxTimeout) {
		timeout = e.cfg.MaxTimeout
	}

	base, cancel := context.WithCancelCause(context.Background())
	ctx := base
	stopTimer := func() {}
	if timeout > 0 {
		// The deadline runs from submission: a job stuck behind a full
		// queue burns its budget too, so callers get a bounded answer
		// time no matter where the time goes.
		ctx, stopTimer = context.WithTimeout(base, timeout)
	}
	job := &Job{
		req:       req,
		key:       key,
		warm:      ws,
		ctx:       ctx,
		cancel:    cancel,
		stopTimer: stopTimer,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		stopTimer()
		cancel(ErrShutdown)
		return nil, ErrShutdown
	}
	e.nextID++
	job.id = fmt.Sprintf("job-%d", e.nextID)
	select {
	case e.queue <- job:
		e.jobs[job.id] = job
		e.pruneFinishedLocked()
		e.mu.Unlock()
		e.reg.Counter("service.jobs_submitted").Add(1)
		e.reg.Gauge("service.queue_depth").Set(float64(len(e.queue)))
		return job, nil
	default:
		e.mu.Unlock()
		stopTimer()
		cancel(ErrQueueFull)
		e.reg.Counter("service.jobs_rejected").Add(1)
		return nil, ErrQueueFull
	}
}

// Get returns the job with the given ID.
func (e *Engine) Get(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Cancel requests cooperative cancellation of the job: a queued job is
// finalized immediately, a running one stops at the next sweep-split or
// Lanczos-cycle poll. It reports whether the ID was known.
func (e *Engine) Cancel(id string) bool {
	j, ok := e.Get(id)
	if !ok {
		return false
	}
	j.cancel(ErrCancelled)
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		// Don't wait for a worker to drain it from the queue; when the
		// worker does, tryStart sees the terminal state and moves on.
		if j.finish(StateCancelled, nil, false, ErrCancelled) {
			e.reg.Counter("service.jobs_cancelled").Add(1)
			e.recordFinished(j)
		}
	}
	return true
}

// Shutdown stops intake and drains: queued and running jobs keep
// running to completion. If ctx fires first the remaining jobs are
// cancelled (cause ErrShutdown) and — because cancellation is
// cooperative down to split/cycle granularity — the workers still exit
// promptly; the ctx error is returned. Safe to call more than once.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		e.mu.Lock()
		for _, j := range e.jobs {
			j.cancel(ErrShutdown)
		}
		e.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (e *Engine) worker() {
	defer e.wg.Done()
	for job := range e.queue {
		e.run(job)
	}
}

// run executes one job: consult the cache, solve on a miss, classify
// the outcome by the job context's cancel cause.
func (e *Engine) run(job *Job) {
	e.reg.Gauge("service.queue_depth").Set(float64(len(e.queue)))
	if !job.tryStart() {
		e.finalizeAborted(job)
		return
	}
	key := job.key
	if key == "" {
		key = cacheKey(job.req.Netlist, job.req.Options)
	}
	if res, ok := e.cache.get(key); ok {
		if job.finish(StateDone, res, true, nil) {
			e.reg.Counter("service.jobs_completed").Add(1)
			e.recordFinished(job)
		}
		return
	}
	res, err := e.solveWithRetry(job)
	switch {
	case err == nil:
		// Publish to the cache even if a racing Cancel beat us to the
		// terminal transition: the result is valid and future identical
		// submissions should hit.
		e.cache.put(key, res)
		if job.finish(StateDone, res, false, nil) {
			e.reg.Counter("service.jobs_completed").Add(1)
			e.recordFinished(job)
		}
	case job.ctx.Err() != nil:
		e.finalizeAborted(job)
	default:
		if job.finish(StateFailed, nil, false, err) {
			e.reg.Counter("service.jobs_failed").Add(1)
			e.recordFinished(job)
		}
	}
}

// safeSolve runs one solve attempt behind the worker recover barrier: a
// panic anywhere in the pipeline (or injected at fault.WorkerPanic)
// becomes a structured *fault.PanicError instead of killing the daemon.
// Recovered panics count in service.panics_recovered and extend the
// consecutive-panic streak that Health watches; any non-panicking
// attempt resets the streak.
func (e *Engine) safeSolve(job *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, e.notePanic(fault.Recovered(r))
		}
	}()
	if e.cfg.Fault.Active(fault.WorkerPanic) {
		panic("injected fault: " + string(fault.WorkerPanic))
	}
	if job.warm != nil {
		res, err = e.solveDeltaFn(job.ctx, job.warm, job.req.Options)
	} else {
		res, err = e.solveFn(job.ctx, job.req, job.req.Options)
	}
	e.mu.Lock()
	e.panicStreak = 0
	e.mu.Unlock()
	return res, err
}

// notePanic records a recovered solve panic and returns it.
func (e *Engine) notePanic(pe *fault.PanicError) error {
	e.reg.Counter("service.panics_recovered").Add(1)
	e.mu.Lock()
	e.panicStreak++
	e.reg.Gauge("service.panic_streak").Set(float64(e.panicStreak))
	e.mu.Unlock()
	return pe
}

// solveWithRetry runs up to Config.RetryAttempts solve attempts with
// capped exponential backoff between them. A solve is a pure function
// of the request and winners are published to the result cache, so
// retrying is idempotent. The loop is deadline-aware twice over: a job
// context that has fired stops the loop at once, and the backoff sleep
// itself aborts when the context fires mid-wait.
func (e *Engine) solveWithRetry(job *Job) (*Result, error) {
	// FNV-1a over the job ID, mixed with the request seed: distinct jobs
	// get distinct — but reproducible — jitter streams.
	seed := uint64(14695981039346656037)
	for i := 0; i < len(job.id); i++ {
		seed = (seed ^ uint64(job.id[i])) * 1099511628211
	}
	seed ^= splitmix64(uint64(job.req.Options.Seed))
	for attempt := 1; ; attempt++ {
		res, err := e.safeSolve(job)
		if err == nil || job.ctx.Err() != nil || attempt >= e.cfg.RetryAttempts {
			return res, err
		}
		e.reg.Counter("service.retries").Add(1)
		d := backoffDelay(attempt, e.cfg.RetryBaseDelay, e.cfg.RetryMaxDelay, seed)
		if e.clock.Sleep(job.ctx, d) != nil {
			// Deadline or cancel mid-backoff: surface the solve error; run()
			// classifies by the context cause.
			return nil, err
		}
	}
}

// finalizeAborted finishes a job whose context fired, classifying by
// cause: an explicit Cancel (or shutdown abandonment) is "cancelled", a
// deadline expiry is "failed" with DeadlineExceeded.
func (e *Engine) finalizeAborted(job *Job) {
	cause := context.Cause(job.ctx)
	if errors.Is(cause, context.DeadlineExceeded) {
		if job.finish(StateFailed, nil, false, fmt.Errorf("service: job deadline exceeded: %w", context.DeadlineExceeded)) {
			e.reg.Counter("service.jobs_failed").Add(1)
			e.recordFinished(job)
		}
	} else if job.finish(StateCancelled, nil, false, cause) {
		e.reg.Counter("service.jobs_cancelled").Add(1)
		e.recordFinished(job)
	}
}

// recordFinished appends the job to the terminal list for pruning.
func (e *Engine) recordFinished(job *Job) {
	e.mu.Lock()
	e.finished = append(e.finished, job.id)
	e.pruneFinishedLocked()
	e.mu.Unlock()
}

// pruneFinishedLocked forgets the oldest terminal jobs beyond
// MaxFinished so the registry cannot grow without bound.
func (e *Engine) pruneFinishedLocked() {
	for len(e.finished) > e.cfg.MaxFinished {
		delete(e.jobs, e.finished[0])
		e.finished = e.finished[1:]
	}
}

// foldMetrics adds a solve trace's registry counters into the
// engine-wide registry, so pipeline-level counters (the portfolio
// race and warm-start tallies) surface on the daemon's /metrics
// instead of dying with the per-job trace. Gauges overwrite —
// last solve wins, which is the natural reading for e.g. the
// winner-ratio gauge.
func foldMetrics(dst *obs.Registry, tr *igpart.Trace) {
	if dst == nil || tr == nil {
		return
	}
	snap := tr.Metrics().Snapshot()
	for name, v := range snap.Counters {
		dst.Counter(name).Add(v)
	}
	for name, v := range snap.Gauges {
		dst.Gauge(name).Set(v)
	}
}

// solve runs the real pipeline for a normalized request, recording the
// stage-span tree into the result. inj forwards the engine's fault
// injector into the pipeline; nil means injection off; reg receives
// the solve's pipeline counters (see foldMetrics).
func solve(ctx context.Context, req Request, o Options, inj *fault.Injector, reg *obs.Registry) (*Result, error) {
	tr := igpart.NewTrace("solve")
	defer foldMetrics(reg, tr)
	scheme := schemes[o.Scheme]
	switch o.Algo {
	case AlgoPortfolio:
		r, err := igpart.Portfolio(req.Netlist, igpart.PortfolioOptions{
			Budget:      o.Budget,
			Accept:      o.Accept,
			Parallelism: o.Parallelism,
			Seed:        o.Seed,
			Rec:         tr,
			Ctx:         ctx,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Algo:     o.Algo,
			Metrics:  r.Metrics,
			Sides:    append([]igpart.Side(nil), r.Partition.Sides()...),
			Lambda2:  r.Lambda2,
			BestRank: r.BestRank,
			NetOrder: r.NetOrder,
			Winner:   r.Winner,
			Stages:   tr.Finish(),
		}, nil
	case AlgoMultilevel:
		r, err := igpart.MultilevelIGMatch(req.Netlist, igpart.MultilevelOptions{
			Levels:          o.Levels,
			CoarseningRatio: o.CoarseningRatio,
			Scheme:          scheme,
			Threshold:       o.Threshold,
			Seed:            o.Seed,
			BlockSize:       o.BlockSize,
			Parallelism:     o.Parallelism,
			Rec:             tr,
			Ctx:             ctx,
			Fault:           inj,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Algo:         o.Algo,
			Metrics:      r.Metrics,
			Sides:        append([]igpart.Side(nil), r.Partition.Sides()...),
			Levels:       r.Levels,
			CoarsestNets: r.CoarsestNets,
			Stages:       tr.Finish(),
		}, nil
	case AlgoKWay, AlgoKWaySpectral:
		// Validate resolved this once already; a failure here means the
		// request was mutated after Submit, which solve treats as fatal.
		fix, err := hypergraph.FixFromPins(req.Netlist, o.Fix, o.K)
		if err != nil {
			return nil, err
		}
		r, err := igpart.KWay(req.Netlist, o.K, igpart.KWayOptions{
			Eps:         o.Eps,
			Fixed:       fix.Part,
			Spectral:    o.Algo == AlgoKWaySpectral,
			Scheme:      scheme,
			Threshold:   o.Threshold,
			Seed:        o.Seed,
			BlockSize:   o.BlockSize,
			Parallelism: o.Parallelism,
			Rec:         tr,
			Ctx:         ctx,
			Fault:       inj,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Algo:         o.Algo,
			Parts:        append([]int(nil), r.Part...),
			K:            r.K,
			Cap:          r.Cap,
			PartSizes:    append([]int(nil), r.Sizes...),
			SpanningNets: r.SpanningNets,
			Connectivity: r.Connectivity,
			RatioValue:   r.RatioValue,
			Stages:       tr.Finish(),
		}, nil
	default: // AlgoIGMatch; Submit normalized and validated Algo already
		r, err := igpart.IGMatch(req.Netlist, igpart.IGMatchOptions{
			Scheme:      scheme,
			Threshold:   o.Threshold,
			Seed:        o.Seed,
			BlockSize:   o.BlockSize,
			Parallelism: o.Parallelism,
			Rec:         tr,
			Ctx:         ctx,
			Fault:       inj,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Algo:     o.Algo,
			Metrics:  r.Metrics,
			Sides:    append([]igpart.Side(nil), r.Partition.Sides()...),
			Lambda2:  r.Lambda2,
			BestRank: r.BestRank,
			NetOrder: r.NetOrder,
			Stages:   tr.Finish(),
		}, nil
	}
}

// solveDelta runs an ECO delta job: warm-start from the base job's
// cached sweep state (or the cold fallback past the perturbation
// threshold), on the same recorder/fault plumbing as solve.
func solveDelta(ctx context.Context, ws *warmSpec, o Options, inj *fault.Injector, reg *obs.Registry) (*Result, error) {
	tr := igpart.NewTrace("solve-delta")
	defer foldMetrics(reg, tr)
	r, err := igpart.WarmStart(ws.base,
		igpart.IGMatchResult{NetOrder: ws.order, BestRank: ws.rank},
		ws.delta,
		igpart.IGMatchOptions{
			Scheme:      schemes[o.Scheme],
			Threshold:   o.Threshold,
			Seed:        o.Seed,
			BlockSize:   o.BlockSize,
			Parallelism: o.Parallelism,
			Rec:         tr,
			Ctx:         ctx,
			Fault:       inj,
		})
	if err != nil {
		return nil, err
	}
	return &Result{
		Algo:        AlgoIGMatch,
		Metrics:     r.Metrics,
		Sides:       append([]igpart.Side(nil), r.Partition.Sides()...),
		BestRank:    r.BestRank,
		NetOrder:    r.NetOrder,
		Warm:        !r.Cold,
		TouchedNets: r.TouchedNets,
		Stages:      tr.Finish(),
	}, nil
}
