package service

import (
	"container/list"
	"sync"

	"igpart/internal/fault"
	"igpart/internal/obs"
)

// lru is the content-addressed result cache: a fixed-capacity,
// mutex-guarded LRU keyed by the SHA-256 content address of
// (canonical netlist, normalized options). Hit/miss/eviction counts
// feed the engine's obs registry (service.cache_hits, …_misses,
// …_evictions), so /metrics exposes cache effectiveness directly.
//
// Values are *Result pointers shared between the cache and every job
// served from it; results are treated as immutable after publication.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	byKey map[string]*list.Element
	reg   *obs.Registry
	inj   *fault.Injector
}

type lruEntry struct {
	key string
	res *Result
}

// newLRU returns a cache holding up to capacity entries, or nil (a
// disabled cache — every lookup misses, stores are dropped) when
// capacity <= 0. The registry may be nil.
func newLRU(capacity int, reg *obs.Registry, inj *fault.Injector) *lru {
	if capacity <= 0 {
		return nil
	}
	return &lru{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
		reg:   reg,
		inj:   inj,
	}
}

// get returns the cached result for key, counting the hit or miss.
func (c *lru) get(key string) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.reg.Counter("service.cache_misses").Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.reg.Counter("service.cache_hits").Add(1)
	return el.Value.(*lruEntry).res, true
}

// put stores res under key, evicting the least-recently-used entry when
// the cache is full. Storing an existing key refreshes its recency.
func (c *lru) put(key string, res *Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	defer func() {
		// Evict-storm injection: a firing store is followed by a full
		// wipe — the stored entry included — counting each eviction.
		// Correctness must not depend on the cache's contents; only hit
		// rates and latency may move, and the chaos suite pins exactly
		// that.
		if c.inj.Active(fault.CacheEvictStorm) {
			for c.order.Len() > 0 {
				oldest := c.order.Back()
				c.order.Remove(oldest)
				delete(c.byKey, oldest.Value.(*lruEntry).key)
				c.reg.Counter("service.cache_evictions").Add(1)
			}
		}
	}()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
		c.reg.Counter("service.cache_evictions").Add(1)
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, res: res})
}

// len returns the number of cached entries.
func (c *lru) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
