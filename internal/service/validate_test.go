package service

import (
	"errors"
	"math"
	"testing"
	"time"

	"igpart"
	"igpart/internal/hypergraph"
)

// tinyNetlist builds a minimal valid netlist: two modules, one net.
func tinyNetlist() *igpart.Netlist {
	b := igpart.NewBuilder().SetNumModules(2)
	b.AddNet(0, 1)
	return b.Build()
}

func TestValidateRejectsBadRequests(t *testing.T) {
	good := tinyNetlist()
	empty := igpart.NewBuilder().SetNumModules(2).Build()
	cases := []struct {
		name string
		req  Request
	}{
		{"nil netlist", Request{}},
		{"zero nets", Request{Netlist: empty}},
		{"negative timeout", Request{Netlist: good, Options: Options{Timeout: -time.Second}}},
		{"NaN coarsening ratio", Request{Netlist: good, Options: Options{Algo: AlgoMultilevel, CoarseningRatio: math.NaN()}}},
		{"Inf coarsening ratio", Request{Netlist: good, Options: Options{Algo: AlgoMultilevel, CoarseningRatio: math.Inf(1)}}},
		{"absurd block size", Request{Netlist: good, Options: Options{BlockSize: maxBlockSize + 1}}},
		{"block wider than matrix", Request{Netlist: good, Options: Options{BlockSize: 5}}},
		{"absurd levels", Request{Netlist: good, Options: Options{Algo: AlgoMultilevel, Levels: maxLevels + 1}}},
		{"absurd parallelism", Request{Netlist: good, Options: Options{Parallelism: maxParallelism + 1}}},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: Validate = %v, want ErrBadRequest", tc.name, err)
		}
	}
	if err := (Request{Netlist: good}).Validate(); err != nil {
		t.Fatalf("minimal valid request rejected: %v", err)
	}
}

// TestSubmitMapsValidationToBadRequest pins the Submit contract: both
// Validate failures and normalize failures (unknown algo/scheme) come
// back wrapping ErrBadRequest, and nothing is enqueued.
func TestSubmitMapsValidationToBadRequest(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdownNow(t, e)
	bad := []Request{
		{},
		{Netlist: tinyNetlist(), Options: Options{Timeout: -1}},
		{Netlist: tinyNetlist(), Options: Options{Algo: "anneal"}},
		{Netlist: tinyNetlist(), Options: Options{Scheme: "bogus"}},
	}
	for i, req := range bad {
		if _, err := e.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad request %d: Submit = %v, want ErrBadRequest", i, err)
		}
	}
	if got := e.Metrics().Snapshot().Counters["service.jobs_submitted"]; got != 0 {
		t.Fatalf("bad requests were enqueued: jobs_submitted = %d", got)
	}
}

// FuzzRequestValidate asserts that validation is total and consistent:
// it never panics on any option combination, rejections are typed, and
// anything Validate+normalize accept can be cache-keyed safely.
func FuzzRequestValidate(f *testing.F) {
	f.Add("igmatch", "paper", int64(0), 0, 0, 0, 0.9, uint8(4), false)
	f.Add("multilevel", "unit", int64(-5), 3, 70, 2, math.NaN(), uint8(0), false)
	f.Add("", "", int64(1<<40), -1, -1, -1, -1.0, uint8(255), true)
	f.Fuzz(func(t *testing.T, algo, scheme string, timeoutNS int64,
		blockSize, levels, parallelism int, cratio float64, nets uint8, nilNet bool) {
		var h *igpart.Netlist
		if !nilNet {
			b := igpart.NewBuilder().SetNumModules(3)
			for i := 0; i < int(nets%8); i++ {
				b.AddNet(i%3, (i+1)%3)
			}
			h = b.Build()
		}
		req := Request{Netlist: h, Options: Options{
			Algo: algo, Scheme: scheme,
			Timeout:         time.Duration(timeoutNS),
			BlockSize:       blockSize,
			Levels:          levels,
			Parallelism:     parallelism,
			CoarseningRatio: cratio,
		}}
		err := req.Validate()
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("Validate returned untyped error %v", err)
			}
			return
		}
		// Validation passed: the netlist exists and options are in range.
		if h == nil || h.NumNets() == 0 {
			t.Fatal("Validate accepted an unusable netlist")
		}
		norm, nerr := req.Options.normalize()
		if nerr != nil {
			return // unknown algo/scheme — Submit wraps this as ErrBadRequest
		}
		if key := cacheKey(h, norm); len(key) != 64 {
			t.Fatalf("cache key %q not a sha256 hex digest", key)
		}
		// Validate must be deterministic.
		if err2 := req.Validate(); err2 != nil {
			t.Fatalf("second Validate disagreed: %v", err2)
		}
	})
}

// kwayNetlist builds a 6-module netlist whose modules carry the default
// synthesized names m0..m5.
func kwayNetlist() *igpart.Netlist {
	b := igpart.NewBuilder().SetNumModules(6)
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.AddNet(2, 3)
	b.AddNet(3, 4)
	b.AddNet(4, 5)
	b.AddNet(0, 5)
	return b.Build()
}

func TestValidateKWayRequests(t *testing.T) {
	h := kwayNetlist()
	pin := func(m string, p int) hypergraph.FixPin { return hypergraph.FixPin{Module: m, Part: p} }
	for _, algo := range []string{AlgoKWay, AlgoKWaySpectral} {
		opt := func(mut func(*Options)) Options {
			o := Options{Algo: algo, K: 3}
			mut(&o)
			return o
		}
		bad := []struct {
			name string
			o    Options
		}{
			{"k too small", opt(func(o *Options) { o.K = 1 })},
			{"k zero", opt(func(o *Options) { o.K = 0 })},
			{"k exceeds modules", opt(func(o *Options) { o.K = 7 })},
			{"k absurd", opt(func(o *Options) { o.K = maxK + 1 })},
			{"negative eps", opt(func(o *Options) { o.Eps = -0.01 })},
			{"NaN eps", opt(func(o *Options) { o.Eps = math.NaN() })},
			{"unknown module", opt(func(o *Options) { o.Fix = []hypergraph.FixPin{pin("bogus", 0)} })},
			{"part out of range", opt(func(o *Options) { o.Fix = []hypergraph.FixPin{pin("m0", 3)} })},
			{"negative part", opt(func(o *Options) { o.Fix = []hypergraph.FixPin{pin("m0", -1)} })},
			{"conflicting duplicate", opt(func(o *Options) { o.Fix = []hypergraph.FixPin{pin("m0", 0), pin("m0", 1)} })},
			{"pins exceed cap", opt(func(o *Options) { o.Fix = []hypergraph.FixPin{pin("m0", 0), pin("m1", 0), pin("m2", 0)} })},
			{"no free module for a part", opt(func(o *Options) {
				o.K = 2
				o.Fix = []hypergraph.FixPin{pin("m0", 0), pin("m1", 0), pin("m2", 0),
					pin("m3", 0), pin("m4", 0), pin("m5", 0)}
			})},
		}
		for _, tc := range bad {
			req := Request{Netlist: h, Options: tc.o}
			if err := req.Validate(); !errors.Is(err, ErrBadRequest) {
				t.Errorf("%s/%s: Validate = %v, want ErrBadRequest", algo, tc.name, err)
			}
		}
		good := Request{Netlist: h, Options: opt(func(o *Options) {
			o.Eps = 0.1
			o.Fix = []hypergraph.FixPin{pin("m0", 0), pin("m5", 2), pin("m0", 0)}
		})}
		if err := good.Validate(); err != nil {
			t.Errorf("%s: valid kway request rejected: %v", algo, err)
		}
	}
}

// TestKWayNormalizeCanonicalizesFix pins the cache-key contract: pin
// order and exact duplicates must not split the cache, while k, eps, and
// the pin set itself must.
func TestKWayNormalizeCanonicalizesFix(t *testing.T) {
	h := kwayNetlist()
	base := Options{Algo: AlgoKWay, K: 3, Eps: 0.1,
		Fix: []hypergraph.FixPin{{Module: "m5", Part: 2}, {Module: "m0", Part: 0}, {Module: "m5", Part: 2}}}
	reordered := base
	reordered.Fix = []hypergraph.FixPin{{Module: "m0", Part: 0}, {Module: "m5", Part: 2}}
	n1, err := base.normalize()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := reordered.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if k1, k2 := cacheKey(h, n1), cacheKey(h, n2); k1 != k2 {
		t.Errorf("reordered duplicate pins split the cache: %s vs %s", k1, k2)
	}
	distinct := []Options{
		{Algo: AlgoKWay, K: 3, Eps: 0.1},
		{Algo: AlgoKWay, K: 4, Eps: 0.1},
		{Algo: AlgoKWay, K: 3, Eps: 0.2},
		{Algo: AlgoKWaySpectral, K: 3, Eps: 0.1},
		{Algo: AlgoKWay, K: 3, Eps: 0.1, Fix: []hypergraph.FixPin{{Module: "m0", Part: 0}}},
	}
	seen := map[string]int{cacheKey(h, n1): -1}
	for i, o := range distinct {
		norm, err := o.normalize()
		if err != nil {
			t.Fatal(err)
		}
		key := cacheKey(h, norm)
		if prev, dup := seen[key]; dup {
			t.Errorf("options %d and %d share a cache key", i, prev)
		}
		seen[key] = i
	}
}

// FuzzKWayRequest asserts k-way validation is total and typed: no input
// panics, every rejection wraps ErrBadRequest, the documented rejections
// (k<2, negative ε, unknown modules, conflicting duplicate pins) always
// fire, and anything accepted survives normalize + cacheKey.
func FuzzKWayRequest(f *testing.F) {
	f.Add(true, 4, 0.03, "m0", 1, "m1", 2)
	f.Add(false, 1, -0.5, "m9", -1, "m0", 4096)
	f.Add(true, 2, math.NaN(), "m0", 0, "m0", 1)
	f.Add(false, 6, 0.0, "m5", 5, "m5", 5)
	f.Fuzz(func(t *testing.T, spectral bool, k int, eps float64, mod1 string, part1 int, mod2 string, part2 int) {
		h := kwayNetlist()
		algo := AlgoKWay
		if spectral {
			algo = AlgoKWaySpectral
		}
		req := Request{Netlist: h, Options: Options{
			Algo: algo, K: k, Eps: eps,
			Fix: []hypergraph.FixPin{
				{Module: mod1, Part: part1},
				{Module: mod2, Part: part2},
			},
		}}
		err := req.Validate()
		if err != nil && !errors.Is(err, ErrBadRequest) {
			t.Fatalf("Validate returned untyped error %v", err)
		}
		known := func(m string) bool {
			return len(m) == 2 && m[0] == 'm' && m[1] >= '0' && m[1] <= '5'
		}
		switch {
		case k < 2 || k > 6:
			if err == nil {
				t.Fatalf("accepted k=%d on a 6-module netlist", k)
			}
		case math.IsNaN(eps) || eps < 0:
			if err == nil {
				t.Fatalf("accepted eps=%v", eps)
			}
		case !known(mod1) || !known(mod2):
			if err == nil {
				t.Fatalf("accepted unknown module %q/%q", mod1, mod2)
			}
		case part1 < 0 || part1 >= k || part2 < 0 || part2 >= k:
			if err == nil {
				t.Fatalf("accepted out-of-range pin part %d/%d with k=%d", part1, part2, k)
			}
		case mod1 == mod2 && part1 != part2:
			if err == nil {
				t.Fatalf("accepted module %q pinned to both %d and %d", mod1, part1, part2)
			}
		}
		if err != nil {
			return
		}
		norm, nerr := req.Options.normalize()
		if nerr != nil {
			t.Fatalf("normalize rejected what Validate accepted: %v", nerr)
		}
		if key := cacheKey(h, norm); len(key) != 64 {
			t.Fatalf("cache key %q not a sha256 hex digest", key)
		}
		if err2 := req.Validate(); err2 != nil {
			t.Fatalf("second Validate disagreed: %v", err2)
		}
	})
}
