package service

import (
	"errors"
	"math"
	"testing"
	"time"

	"igpart"
)

// tinyNetlist builds a minimal valid netlist: two modules, one net.
func tinyNetlist() *igpart.Netlist {
	b := igpart.NewBuilder().SetNumModules(2)
	b.AddNet(0, 1)
	return b.Build()
}

func TestValidateRejectsBadRequests(t *testing.T) {
	good := tinyNetlist()
	empty := igpart.NewBuilder().SetNumModules(2).Build()
	cases := []struct {
		name string
		req  Request
	}{
		{"nil netlist", Request{}},
		{"zero nets", Request{Netlist: empty}},
		{"negative timeout", Request{Netlist: good, Options: Options{Timeout: -time.Second}}},
		{"NaN coarsening ratio", Request{Netlist: good, Options: Options{Algo: AlgoMultilevel, CoarseningRatio: math.NaN()}}},
		{"Inf coarsening ratio", Request{Netlist: good, Options: Options{Algo: AlgoMultilevel, CoarseningRatio: math.Inf(1)}}},
		{"absurd block size", Request{Netlist: good, Options: Options{BlockSize: maxBlockSize + 1}}},
		{"block wider than matrix", Request{Netlist: good, Options: Options{BlockSize: 5}}},
		{"absurd levels", Request{Netlist: good, Options: Options{Algo: AlgoMultilevel, Levels: maxLevels + 1}}},
		{"absurd parallelism", Request{Netlist: good, Options: Options{Parallelism: maxParallelism + 1}}},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: Validate = %v, want ErrBadRequest", tc.name, err)
		}
	}
	if err := (Request{Netlist: good}).Validate(); err != nil {
		t.Fatalf("minimal valid request rejected: %v", err)
	}
}

// TestSubmitMapsValidationToBadRequest pins the Submit contract: both
// Validate failures and normalize failures (unknown algo/scheme) come
// back wrapping ErrBadRequest, and nothing is enqueued.
func TestSubmitMapsValidationToBadRequest(t *testing.T) {
	e := New(Config{Workers: 1})
	defer shutdownNow(t, e)
	bad := []Request{
		{},
		{Netlist: tinyNetlist(), Options: Options{Timeout: -1}},
		{Netlist: tinyNetlist(), Options: Options{Algo: "anneal"}},
		{Netlist: tinyNetlist(), Options: Options{Scheme: "bogus"}},
	}
	for i, req := range bad {
		if _, err := e.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad request %d: Submit = %v, want ErrBadRequest", i, err)
		}
	}
	if got := e.Metrics().Snapshot().Counters["service.jobs_submitted"]; got != 0 {
		t.Fatalf("bad requests were enqueued: jobs_submitted = %d", got)
	}
}

// FuzzRequestValidate asserts that validation is total and consistent:
// it never panics on any option combination, rejections are typed, and
// anything Validate+normalize accept can be cache-keyed safely.
func FuzzRequestValidate(f *testing.F) {
	f.Add("igmatch", "paper", int64(0), 0, 0, 0, 0.9, uint8(4), false)
	f.Add("multilevel", "unit", int64(-5), 3, 70, 2, math.NaN(), uint8(0), false)
	f.Add("", "", int64(1<<40), -1, -1, -1, -1.0, uint8(255), true)
	f.Fuzz(func(t *testing.T, algo, scheme string, timeoutNS int64,
		blockSize, levels, parallelism int, cratio float64, nets uint8, nilNet bool) {
		var h *igpart.Netlist
		if !nilNet {
			b := igpart.NewBuilder().SetNumModules(3)
			for i := 0; i < int(nets%8); i++ {
				b.AddNet(i%3, (i+1)%3)
			}
			h = b.Build()
		}
		req := Request{Netlist: h, Options: Options{
			Algo: algo, Scheme: scheme,
			Timeout:         time.Duration(timeoutNS),
			BlockSize:       blockSize,
			Levels:          levels,
			Parallelism:     parallelism,
			CoarseningRatio: cratio,
		}}
		err := req.Validate()
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("Validate returned untyped error %v", err)
			}
			return
		}
		// Validation passed: the netlist exists and options are in range.
		if h == nil || h.NumNets() == 0 {
			t.Fatal("Validate accepted an unusable netlist")
		}
		norm, nerr := req.Options.normalize()
		if nerr != nil {
			return // unknown algo/scheme — Submit wraps this as ErrBadRequest
		}
		if key := cacheKey(h, norm); len(key) != 64 {
			t.Fatalf("cache key %q not a sha256 hex digest", key)
		}
		// Validate must be deterministic.
		if err2 := req.Validate(); err2 != nil {
			t.Fatalf("second Validate disagreed: %v", err2)
		}
	})
}
