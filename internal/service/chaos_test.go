package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"igpart"
	"igpart/internal/fault"
)

// mustInjector builds an injector from rules, failing the test on a bad
// spec.
func mustInjector(t *testing.T, seed int64, rules ...fault.Rule) *fault.Injector {
	t.Helper()
	in, err := fault.New(seed, nil, rules...)
	if err != nil {
		t.Fatalf("fault.New: %v", err)
	}
	return in
}

// TestChaosWorkerPanicSurvives100 is the headline panic-isolation test:
// with worker.panic armed for exactly 100 fires, the engine must absorb
// 100 consecutive panicking jobs — every one terminal in StateFailed
// with a structured PanicError carrying a stack — and then complete a
// clean job, with panics_recovered matching the injection count and the
// degraded-health streak resetting.
func TestChaosWorkerPanicSurvives100(t *testing.T) {
	const n = 100
	h := genNetlist(t, 60, 70, 1)
	inj := mustInjector(t, 42, fault.Rule{Point: fault.WorkerPanic, Limit: n})
	e := New(Config{Workers: 2, QueueDepth: n + 4, RetryAttempts: -1, Fault: inj})
	defer shutdownNow(t, e)

	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := e.Submit(Request{Netlist: h, Options: Options{Seed: int64(i)}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for i, j := range jobs {
		s := j.Wait(context.Background())
		if s.State != StateFailed {
			t.Fatalf("job %d: state=%s err=%v, want failed", i, s.State, s.Err)
		}
		pe, ok := fault.AsPanic(s.Err)
		if !ok {
			t.Fatalf("job %d: err=%v, want PanicError", i, s.Err)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("job %d: panic stack not captured", i)
		}
	}
	snap := e.Metrics().Snapshot()
	if got := snap.Counters["service.panics_recovered"]; got != n {
		t.Fatalf("panics_recovered = %d, want %d", got, n)
	}
	if got := inj.Fires(fault.WorkerPanic); got != n {
		t.Fatalf("worker.panic fired %d times, want %d", got, n)
	}
	if hl := e.Health(); hl.Ready || hl.Status != "degraded" {
		t.Fatalf("after %d straight panics Health = %+v, want degraded", n, hl)
	}

	// The injection budget is spent: the next job runs clean, and one
	// clean solve restores readiness.
	j, err := e.Submit(Request{Netlist: h, Options: Options{Seed: 7777}})
	if err != nil {
		t.Fatalf("post-chaos submit: %v", err)
	}
	if s := j.Wait(context.Background()); s.State != StateDone {
		t.Fatalf("post-chaos job: state=%s err=%v, want done", s.State, s.Err)
	}
	if hl := e.Health(); !hl.Ready || hl.PanicStreak != 0 {
		t.Fatalf("after clean solve Health = %+v, want ready", hl)
	}
}

// TestChaosEigenNoConvergeSameCut pins the acceptance criterion for the
// eigen fallback chain end to end: with eigen.noconverge always firing,
// a job on a circuit within the dense-fallback cutoff must converge via
// the Jacobi rescue to the same ratio cut as a clean run.
func TestChaosEigenNoConvergeSameCut(t *testing.T) {
	h := genNetlist(t, 150, 180, 9) // 180 nets ≤ default cutoff 512
	inj := mustInjector(t, 5, fault.Rule{Point: fault.EigenNoConverge})
	e := New(Config{Workers: 1, RetryAttempts: -1, Fault: inj})
	defer shutdownNow(t, e)

	j, err := e.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := j.Wait(context.Background())
	if s.State != StateDone {
		t.Fatalf("state=%s err=%v, want done via Jacobi fallback", s.State, s.Err)
	}
	if inj.Fires(fault.EigenNoConverge) == 0 {
		t.Fatal("eigen.noconverge never fired")
	}
	clean, err := igpart.IGMatch(h)
	if err != nil {
		t.Fatal(err)
	}
	if s.Result.Metrics.RatioCut != clean.Metrics.RatioCut {
		t.Fatalf("fallback ratio cut %v != clean %v",
			s.Result.Metrics.RatioCut, clean.Metrics.RatioCut)
	}
}

// TestChaosLatencyFaultsPreserveResults pins the parity property for
// the latency-and-capacity fault points: slow shards and cache evict
// storms may only cost time and hit rate, never change a result.
func TestChaosLatencyFaultsPreserveResults(t *testing.T) {
	h := genNetlist(t, 120, 140, 4)
	inj := mustInjector(t, 11,
		fault.Rule{Point: fault.SweepSlowShard},
		fault.Rule{Point: fault.CacheEvictStorm},
	)
	e := New(Config{Workers: 1, Fault: inj})
	defer shutdownNow(t, e)

	clean, err := igpart.IGMatch(h, igpart.IGMatchOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		j, err := e.Submit(Request{Netlist: h, Options: Options{Parallelism: 4}})
		if err != nil {
			t.Fatalf("round %d submit: %v", round, err)
		}
		s := j.Wait(context.Background())
		if s.State != StateDone {
			t.Fatalf("round %d: state=%s err=%v", round, s.State, s.Err)
		}
		if s.Result.Metrics != clean.Metrics {
			t.Fatalf("round %d: metrics %+v != clean %+v", round, s.Result.Metrics, clean.Metrics)
		}
		if s.Cached {
			t.Fatalf("round %d: cache hit despite evict storm on every store", round)
		}
	}
	if inj.Fires(fault.SweepSlowShard) == 0 || inj.Fires(fault.CacheEvictStorm) == 0 {
		t.Fatalf("latency faults never fired: %s", inj)
	}
	if got := e.Metrics().Snapshot().Counters["service.cache_evictions"]; got == 0 {
		t.Fatal("evict storm recorded no evictions")
	}
}

// TestChaosMixedFaultSweep runs a stream of jobs under several armed
// points at once. The invariants: the engine never crashes, every job
// reaches a terminal state, and the only failures are structured panic
// errors — eigen non-convergence is absorbed by the fallback chain.
func TestChaosMixedFaultSweep(t *testing.T) {
	h := genNetlist(t, 90, 110, 6)
	inj := mustInjector(t, 99,
		fault.Rule{Point: fault.WorkerPanic, Every: 3},
		fault.Rule{Point: fault.EigenNoConverge, Every: 2},
		fault.Rule{Point: fault.CacheEvictStorm},
	)
	e := New(Config{Workers: 2, QueueDepth: 32, RetryAttempts: -1, Fault: inj})
	defer shutdownNow(t, e)

	const n = 24
	var failed, done int
	for i := 0; i < n; i++ {
		j, err := e.Submit(Request{Netlist: h, Options: Options{Seed: int64(i)}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		s := j.Wait(context.Background())
		switch s.State {
		case StateDone:
			done++
		case StateFailed:
			if _, ok := fault.AsPanic(s.Err); !ok {
				t.Fatalf("job %d failed with non-panic error: %v", i, s.Err)
			}
			failed++
		default:
			t.Fatalf("job %d: unexpected terminal state %s", i, s.State)
		}
	}
	if done == 0 || failed == 0 {
		t.Fatalf("mixed sweep not mixed: %d done, %d failed", done, failed)
	}
	snap := e.Metrics().Snapshot()
	if snap.Counters["service.panics_recovered"] != int64(failed) {
		t.Fatalf("panics_recovered = %d, failed jobs = %d",
			snap.Counters["service.panics_recovered"], failed)
	}
}

// TestChaosRetryAbsorbsOnePanic shows retry and panic isolation
// composing: with worker.panic limited to one fire and two attempts
// allowed, the single submitted job panics, backs off, and succeeds.
func TestChaosRetryAbsorbsOnePanic(t *testing.T) {
	h := genNetlist(t, 60, 70, 2)
	inj := mustInjector(t, 8, fault.Rule{Point: fault.WorkerPanic, Limit: 1})
	e := New(Config{Workers: 1, RetryAttempts: 2, RetryBaseDelay: time.Millisecond, Fault: inj})
	defer shutdownNow(t, e)

	j, err := e.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := j.Wait(context.Background())
	if s.State != StateDone {
		t.Fatalf("state=%s err=%v, want done after retry", s.State, s.Err)
	}
	snap := e.Metrics().Snapshot()
	if snap.Counters["service.retries"] != 1 || snap.Counters["service.panics_recovered"] != 1 {
		t.Fatalf("counters = %+v, want 1 retry / 1 recovered panic", snap.Counters)
	}
}

// TestShutdownRacingCancel drives Shutdown and Cancel at the same
// moment, repeatedly: exactly one terminal transition must win, the
// outcome counters must agree with the terminal state, and nothing may
// trip the race detector.
func TestShutdownRacingCancel(t *testing.T) {
	h := genNetlist(t, 20, 24, 3)
	for round := 0; round < 8; round++ {
		e, release := blockingEngine(Config{Workers: 1})
		j, err := e.Submit(Request{Netlist: h})
		if err != nil {
			t.Fatalf("round %d submit: %v", round, err)
		}
		waitState(t, j, StateRunning, 5*time.Second)

		start := make(chan struct{})
		errc := make(chan error, 1)
		go func() {
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			e.Shutdown(ctx)
			errc <- nil
		}()
		go func() {
			<-start
			e.Cancel(j.ID())
		}()
		close(start)
		<-errc
		close(release)

		s := j.Wait(context.Background())
		if s.State != StateCancelled {
			t.Fatalf("round %d: state=%s err=%v, want cancelled", round, s.State, s.Err)
		}
		if !errors.Is(s.Err, ErrCancelled) && !errors.Is(s.Err, ErrShutdown) {
			t.Fatalf("round %d: cancel cause %v, want ErrCancelled or ErrShutdown", round, s.Err)
		}
		if got := e.Metrics().Snapshot().Counters["service.jobs_cancelled"]; got != 1 {
			t.Fatalf("round %d: jobs_cancelled = %d, want exactly 1 (terminal state wins once)", round, got)
		}
	}
}
