package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"igpart"
)

// fakeClock records Sleep calls instead of waiting, so backoff
// schedules are asserted without wall time. An optional onSleep hook
// lets a test fire the job context mid-backoff.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	sleeps  []time.Duration
	onSleep func(ctx context.Context, d time.Duration) error
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	hook := c.onSleep
	c.mu.Unlock()
	if hook != nil {
		return hook(ctx, d)
	}
	return ctx.Err()
}

func (c *fakeClock) slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// failNTimesEngine returns an engine whose solver fails the first n
// attempts and then succeeds.
func failNTimesEngine(cfg Config, n int) (*Engine, *fakeClock) {
	e := New(cfg)
	clk := &fakeClock{now: time.Unix(0, 0)}
	e.clock = clk
	attempts := 0
	e.solveFn = func(ctx context.Context, req Request, o Options) (*Result, error) {
		attempts++
		if attempts <= n {
			return nil, errors.New("transient solver failure")
		}
		return &Result{Algo: o.Algo, Sides: []igpart.Side{igpart.U, igpart.W}}, nil
	}
	return e, clk
}

func TestRetryScheduleWithFakeClock(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	e, clk := failNTimesEngine(Config{
		Workers: 1, RetryAttempts: 4,
		RetryBaseDelay: base, RetryMaxDelay: max,
	}, 2)
	defer shutdownNow(t, e)

	h := genNetlist(t, 20, 24, 3)
	j, err := e.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if s := j.Wait(context.Background()); s.State != StateDone {
		t.Fatalf("state=%s err=%v, want done on attempt 3", s.State, s.Err)
	}
	sleeps := clk.slept()
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2 (two failed attempts)", len(sleeps))
	}
	// Jittered exponential: attempt n waits in [cap/2, cap) of base·2^(n−1).
	for i, want := range []time.Duration{base, 2 * base} {
		if sleeps[i] < want/2 || sleeps[i] >= want {
			t.Fatalf("sleep %d = %v, want in [%v, %v)", i, sleeps[i], want/2, want)
		}
	}
	if got := e.Metrics().Snapshot().Counters["service.retries"]; got != 2 {
		t.Fatalf("service.retries = %d, want 2", got)
	}
}

func TestRetryExhaustionFailsJob(t *testing.T) {
	e, clk := failNTimesEngine(Config{Workers: 1, RetryAttempts: 3, RetryBaseDelay: time.Millisecond}, 99)
	defer shutdownNow(t, e)

	h := genNetlist(t, 20, 24, 3)
	j, _ := e.Submit(Request{Netlist: h})
	s := j.Wait(context.Background())
	if s.State != StateFailed || s.Err == nil {
		t.Fatalf("state=%s err=%v, want failed with solver error", s.State, s.Err)
	}
	if got := len(clk.slept()); got != 2 {
		t.Fatalf("slept %d times, want 2 (attempts 1→2 and 2→3)", got)
	}
}

func TestRetryDisabled(t *testing.T) {
	e, clk := failNTimesEngine(Config{Workers: 1, RetryAttempts: -1}, 99)
	defer shutdownNow(t, e)

	h := genNetlist(t, 20, 24, 3)
	j, _ := e.Submit(Request{Netlist: h})
	if s := j.Wait(context.Background()); s.State != StateFailed {
		t.Fatalf("state=%s, want failed on the only attempt", s.State)
	}
	if len(clk.slept()) != 0 {
		t.Fatal("retry-disabled engine backed off")
	}
}

// TestRetryDeadlineTruncatesBackoff pins deadline-awareness: when the
// job deadline lands inside the backoff wait, the engine gives up
// immediately and the job fails with the deadline cause.
func TestRetryDeadlineTruncatesBackoff(t *testing.T) {
	e, clk := failNTimesEngine(Config{
		Workers: 1, RetryAttempts: 3,
		RetryBaseDelay: time.Hour, RetryMaxDelay: time.Hour,
	}, 99)
	defer shutdownNow(t, e)
	clk.onSleep = func(ctx context.Context, d time.Duration) error {
		<-ctx.Done() // an hour-long backoff always outlives the deadline
		return ctx.Err()
	}

	h := genNetlist(t, 20, 24, 3)
	j, err := e.Submit(Request{Netlist: h, Options: Options{Timeout: 30 * time.Millisecond}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := j.Wait(context.Background())
	if s.State != StateFailed || !errors.Is(s.Err, context.DeadlineExceeded) {
		t.Fatalf("state=%s err=%v, want failed/DeadlineExceeded from mid-backoff", s.State, s.Err)
	}
	if got := len(clk.slept()); got != 1 {
		t.Fatalf("slept %d times, want 1 — no further attempts after the deadline", got)
	}
}

func TestBackoffDelayFunction(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	prevCap := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := backoffDelay(attempt, base, max, 12345)
		// Uncapped ideal for this attempt.
		ideal := base
		for i := 1; i < attempt && ideal < max; i++ {
			ideal *= 2
		}
		if ideal > max {
			ideal = max
		}
		if d < ideal/2 || d >= ideal {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, ideal/2, ideal)
		}
		if ideal < prevCap {
			t.Fatalf("attempt %d: cap shrank", attempt)
		}
		prevCap = ideal
	}
	// Capped: attempts far out never exceed max.
	if d := backoffDelay(50, base, max, 1); d >= max {
		t.Fatalf("attempt 50: delay %v not capped below %v", d, max)
	}
	// Deterministic per seed, varies across seeds.
	if backoffDelay(3, base, max, 7) != backoffDelay(3, base, max, 7) {
		t.Fatal("same seed gave different delays")
	}
	varies := false
	for seed := uint64(0); seed < 16; seed++ {
		if backoffDelay(3, base, max, seed) != backoffDelay(3, base, max, seed+100) {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("jitter never varies across seeds")
	}
}

func TestHealthDegradesOnQueueOccupancy(t *testing.T) {
	h := genNetlist(t, 20, 24, 3)
	e, release := blockingEngine(Config{Workers: 1, QueueDepth: 4, DegradedQueueFrac: 0.5})
	defer shutdownNow(t, e)

	if hl := e.Health(); !hl.Ready || !hl.Live || hl.Status != "ok" {
		t.Fatalf("idle engine Health = %+v, want live+ready", hl)
	}
	j1, _ := e.Submit(Request{Netlist: h})
	waitState(t, j1, StateRunning, 5*time.Second)
	for i := 0; i < 3; i++ { // 3 queued of 4 ≥ 0.5 occupancy
		if _, err := e.Submit(Request{Netlist: h}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	hl := e.Health()
	if hl.Ready || hl.Status != "degraded" || !hl.Live {
		t.Fatalf("backlogged Health = %+v, want live but degraded", hl)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for e.Health().QueueDepth > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if hl := e.Health(); !hl.Ready {
		t.Fatalf("drained Health = %+v, want readiness restored", hl)
	}
}

func TestHealthShutdownNotLive(t *testing.T) {
	e, _ := blockingEngine(Config{Workers: 1})
	shutdownNow(t, e)
	if hl := e.Health(); hl.Live || hl.Ready || hl.Status != "shutdown" {
		t.Fatalf("shut-down Health = %+v", hl)
	}
}
