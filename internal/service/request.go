package service

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"time"

	"igpart"
)

// The algorithms the engine serves. Only the deterministic pipeline
// entry points are exposed: a job is a pure function of (netlist,
// normalized options), which is what makes results content-addressable.
const (
	AlgoIGMatch    = "igmatch"
	AlgoMultilevel = "multilevel"
)

// Options are the solver knobs a job may set. The zero value runs flat
// IG-Match with the paper's configuration.
type Options struct {
	// Algo selects the pipeline: AlgoIGMatch (default) or AlgoMultilevel.
	Algo string
	// Scheme names the intersection-graph edge weighting: "paper"
	// (default), "unit", "overlap", or "minsize".
	Scheme string
	// Threshold excludes nets above this size from the eigensolve IG.
	Threshold int
	// Seed seeds the Lanczos starting vector.
	Seed int64
	// BlockSize selects block Lanczos when > 1.
	BlockSize int
	// Parallelism bounds the sweep shard count (0 = GOMAXPROCS). Results
	// are bit-identical at every value, so it is NOT part of the cache
	// key: a cached result satisfies any parallelism.
	Parallelism int
	// Levels is the V-cycle depth for AlgoMultilevel (default 3).
	Levels int
	// CoarseningRatio is the V-cycle stall threshold (default 0.9).
	CoarseningRatio float64
	// Timeout is the per-job deadline, measured from submission so that
	// queue wait counts against it. 0 uses the engine default; the
	// engine's MaxTimeout caps it. Not part of the cache key.
	Timeout time.Duration
}

// Request is one partitioning job: a netlist plus solver options.
type Request struct {
	Netlist *igpart.Netlist
	Options Options
}

// ErrBadRequest is the typed rejection for malformed requests: the
// caller sent something that can never run, as opposed to transient
// engine conditions like ErrQueueFull. cmd/igpartd maps it to HTTP 400.
var ErrBadRequest = errors.New("service: bad request")

// Validation bounds for knobs where any larger value signals a
// corrupted or hostile request rather than a real configuration.
const (
	maxBlockSize   = 1 << 10 // block Lanczos beyond this is never useful
	maxLevels      = 64      // a 64-deep V-cycle exceeds any real netlist
	maxParallelism = 1 << 16
)

// badf wraps a formatted validation failure in ErrBadRequest.
func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// Validate rejects requests that can never run: no or empty netlist,
// negative timeouts, and option values outside any sane range. It is
// called by Engine.Submit before normalization; everything it rejects
// wraps ErrBadRequest so transports can classify with errors.Is.
func (r Request) Validate() error {
	if r.Netlist == nil {
		return badf("request has no netlist")
	}
	if r.Netlist.NumNets() == 0 {
		return badf("netlist has no nets")
	}
	if r.Netlist.NumModules() == 0 {
		return badf("netlist has no modules")
	}
	o := r.Options
	if o.Timeout < 0 {
		return badf("negative timeout %v", o.Timeout)
	}
	if math.IsNaN(o.CoarseningRatio) || math.IsInf(o.CoarseningRatio, 0) {
		return badf("coarsening ratio is not finite")
	}
	if o.BlockSize > maxBlockSize {
		return badf("block size %d exceeds %d", o.BlockSize, maxBlockSize)
	}
	if o.Levels > maxLevels {
		return badf("levels %d exceeds %d", o.Levels, maxLevels)
	}
	if o.Parallelism > maxParallelism {
		return badf("parallelism %d exceeds %d", o.Parallelism, maxParallelism)
	}
	if o.BlockSize > r.Netlist.NumNets() {
		// The eigenproblem's dimension is the net count; a block wider
		// than the matrix is a unit confusion on the caller's side.
		return badf("block size %d exceeds net count %d", o.BlockSize, r.Netlist.NumNets())
	}
	return nil
}

// schemes maps the wire names onto the weight-scheme constants.
var schemes = map[string]igpart.WeightScheme{
	"":        igpart.SchemePaper,
	"paper":   igpart.SchemePaper,
	"unit":    igpart.SchemeUnit,
	"overlap": igpart.SchemeOverlap,
	"minsize": igpart.SchemeMinSize,
}

// normalize applies defaults and validates the options. Two option sets
// that normalize equal always produce identical results.
func (o Options) normalize() (Options, error) {
	switch o.Algo {
	case "", AlgoIGMatch:
		o.Algo = AlgoIGMatch
		o.Levels = 0
		o.CoarseningRatio = 0
	case AlgoMultilevel:
		if o.Levels <= 0 {
			o.Levels = 3
		}
		if o.CoarseningRatio <= 0 || o.CoarseningRatio > 1 {
			o.CoarseningRatio = 0.9
		}
	default:
		return o, fmt.Errorf("service: unknown algorithm %q", o.Algo)
	}
	if _, ok := schemes[o.Scheme]; !ok {
		return o, fmt.Errorf("service: unknown weight scheme %q", o.Scheme)
	}
	if o.Scheme == "" {
		o.Scheme = "paper"
	}
	if o.Threshold < 0 {
		o.Threshold = 0
	}
	if o.BlockSize < 0 {
		o.BlockSize = 0
	}
	return o, nil
}

// cacheKey content-addresses a request: SHA-256 over the canonicalized
// netlist plus the normalized result-determining options. Parallelism
// and Timeout are deliberately excluded — neither changes the result.
// o must already be normalized.
func cacheKey(h *igpart.Netlist, o Options) string {
	sum := sha256.New()
	sum.Write(h.CanonicalBytes())
	fmt.Fprintf(sum, "|algo=%s|scheme=%s|thr=%d|seed=%d|block=%d",
		o.Algo, o.Scheme, o.Threshold, o.Seed, o.BlockSize)
	if o.Algo == AlgoMultilevel {
		fmt.Fprintf(sum, "|levels=%d|cratio=%g", o.Levels, o.CoarseningRatio)
	}
	return fmt.Sprintf("%x", sum.Sum(nil))
}
