package service

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"igpart"
	"igpart/internal/hypergraph"
	"igpart/internal/multiway"
)

// The algorithms the engine serves. Only the deterministic pipeline
// entry points are exposed: a job is a pure function of (netlist,
// normalized options), which is what makes results content-addressable.
const (
	AlgoIGMatch      = "igmatch"
	AlgoMultilevel   = "multilevel"
	AlgoKWay         = "kway"
	AlgoKWaySpectral = "kway-spectral"
	AlgoPortfolio    = "portfolio"
)

// kwayAlgo reports whether the algorithm runs the balanced k-way engine.
func kwayAlgo(algo string) bool {
	return algo == AlgoKWay || algo == AlgoKWaySpectral
}

// Options are the solver knobs a job may set. The zero value runs flat
// IG-Match with the paper's configuration.
type Options struct {
	// Algo selects the pipeline: AlgoIGMatch (default) or AlgoMultilevel.
	Algo string
	// Scheme names the intersection-graph edge weighting: "paper"
	// (default), "unit", "overlap", or "minsize".
	Scheme string
	// Threshold excludes nets above this size from the eigensolve IG.
	Threshold int
	// Seed seeds the Lanczos starting vector.
	Seed int64
	// BlockSize selects block Lanczos when > 1.
	BlockSize int
	// Parallelism bounds the sweep shard count (0 = GOMAXPROCS). Results
	// are bit-identical at every value, so it is NOT part of the cache
	// key: a cached result satisfies any parallelism.
	Parallelism int
	// Levels is the V-cycle depth for AlgoMultilevel (default 3).
	Levels int
	// CoarseningRatio is the V-cycle stall threshold (default 0.9).
	CoarseningRatio float64
	// K is the part count for AlgoKWay/AlgoKWaySpectral (≥ 2, required).
	K int
	// Eps is the k-way imbalance budget ε ≥ 0: each part holds at most
	// ⌈(1+ε)·n/K⌉ modules. 0 demands perfect balance.
	Eps float64
	// Fix pins named modules to parts for AlgoKWay/AlgoKWaySpectral.
	// Names must exist in the netlist; a module may not be pinned to two
	// different parts.
	Fix []hypergraph.FixPin
	// Budget bounds the AlgoPortfolio race; contenders still running at
	// expiry are cancelled and the best finished result wins. 0 waits
	// for every contender, which (with Accept 0) makes the outcome
	// deterministic — the configuration the cache assumes.
	Budget time.Duration
	// Accept is the AlgoPortfolio acceptance ratio-cut bound: the first
	// contender at or under it wins immediately. Positive values make
	// the winner timing-dependent; a cached result is then one valid
	// outcome, not the unique one.
	Accept float64
	// Timeout is the per-job deadline, measured from submission so that
	// queue wait counts against it. 0 uses the engine default; the
	// engine's MaxTimeout caps it. Not part of the cache key.
	Timeout time.Duration
}

// Request is one partitioning job: a netlist plus solver options.
type Request struct {
	Netlist *igpart.Netlist
	Options Options
}

// ErrBadRequest is the typed rejection for malformed requests: the
// caller sent something that can never run, as opposed to transient
// engine conditions like ErrQueueFull. cmd/igpartd maps it to HTTP 400.
var ErrBadRequest = errors.New("service: bad request")

// Validation bounds for knobs where any larger value signals a
// corrupted or hostile request rather than a real configuration.
const (
	maxBlockSize   = 1 << 10 // block Lanczos beyond this is never useful
	maxLevels      = 64      // a 64-deep V-cycle exceeds any real netlist
	maxParallelism = 1 << 16
	maxK           = 1 << 12 // beyond 4096 parts the recursion is abuse, not CAD
	maxFixPins     = 1 << 20
)

// badf wraps a formatted validation failure in ErrBadRequest.
func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// Validate rejects requests that can never run: no or empty netlist,
// negative timeouts, and option values outside any sane range. It is
// called by Engine.Submit before normalization; everything it rejects
// wraps ErrBadRequest so transports can classify with errors.Is.
func (r Request) Validate() error {
	if r.Netlist == nil {
		return badf("request has no netlist")
	}
	if r.Netlist.NumNets() == 0 {
		return badf("netlist has no nets")
	}
	if r.Netlist.NumModules() == 0 {
		return badf("netlist has no modules")
	}
	o := r.Options
	if o.Timeout < 0 {
		return badf("negative timeout %v", o.Timeout)
	}
	if math.IsNaN(o.CoarseningRatio) || math.IsInf(o.CoarseningRatio, 0) {
		return badf("coarsening ratio is not finite")
	}
	if o.BlockSize > maxBlockSize {
		return badf("block size %d exceeds %d", o.BlockSize, maxBlockSize)
	}
	if o.Levels > maxLevels {
		return badf("levels %d exceeds %d", o.Levels, maxLevels)
	}
	if o.Parallelism > maxParallelism {
		return badf("parallelism %d exceeds %d", o.Parallelism, maxParallelism)
	}
	if o.Budget < 0 {
		return badf("negative portfolio budget %v", o.Budget)
	}
	if math.IsNaN(o.Accept) || math.IsInf(o.Accept, 0) || o.Accept < 0 {
		return badf("portfolio accept bound %v, need a finite value >= 0", o.Accept)
	}
	if o.BlockSize > r.Netlist.NumNets() {
		// The eigenproblem's dimension is the net count; a block wider
		// than the matrix is a unit confusion on the caller's side.
		return badf("block size %d exceeds net count %d", o.BlockSize, r.Netlist.NumNets())
	}
	if kwayAlgo(o.Algo) {
		if o.K < 2 {
			return badf("k=%d, need at least 2", o.K)
		}
		if o.K > maxK {
			return badf("k %d exceeds %d", o.K, maxK)
		}
		if o.K > r.Netlist.NumModules() {
			return badf("%d modules cannot form %d parts", r.Netlist.NumModules(), o.K)
		}
		if math.IsNaN(o.Eps) || o.Eps < 0 {
			return badf("imbalance budget eps=%v, need >= 0", o.Eps)
		}
		if len(o.Fix) > maxFixPins {
			return badf("%d fix pins exceed %d", len(o.Fix), maxFixPins)
		}
		// Resolving the pin list surfaces unknown module names, part
		// indices outside [0,k), and modules pinned two different ways.
		fix, err := hypergraph.FixFromPins(r.Netlist, o.Fix, o.K)
		if err != nil {
			return badf("%v", err)
		}
		// Reject infeasible pin loads up front (the engine would fail the
		// job anyway, but a 400 beats a failed job): a part's pins must
		// fit under the ε cap, and every pin-less part needs a free module.
		n := r.Netlist.NumModules()
		cap_ := multiway.PartCap(n, o.K, o.Eps)
		count := make([]int, o.K)
		nFixed := 0
		for _, p := range fix.Part {
			if p >= 0 {
				count[p]++
				nFixed++
			}
		}
		needy := 0
		for p, c := range count {
			if c > cap_ {
				return badf("%d modules pinned to part %d exceed the %d-module cap", c, p, cap_)
			}
			if c == 0 {
				needy++
			}
		}
		if n-nFixed < needy {
			return badf("only %d free modules for %d parts with no pinned module", n-nFixed, needy)
		}
	}
	return nil
}

// schemes maps the wire names onto the weight-scheme constants.
var schemes = map[string]igpart.WeightScheme{
	"":        igpart.SchemePaper,
	"paper":   igpart.SchemePaper,
	"unit":    igpart.SchemeUnit,
	"overlap": igpart.SchemeOverlap,
	"minsize": igpart.SchemeMinSize,
}

// normalize applies defaults and validates the options. Two option sets
// that normalize equal always produce identical results.
func (o Options) normalize() (Options, error) {
	switch o.Algo {
	case "", AlgoIGMatch:
		o.Algo = AlgoIGMatch
		o.Levels = 0
		o.CoarseningRatio = 0
	case AlgoMultilevel:
		if o.Levels <= 0 {
			o.Levels = 3
		}
		if o.CoarseningRatio <= 0 || o.CoarseningRatio > 1 {
			o.CoarseningRatio = 0.9
		}
	case AlgoPortfolio:
		o.Levels = 0
		o.CoarseningRatio = 0
	case AlgoKWay, AlgoKWaySpectral:
		o.Levels = 0
		o.CoarseningRatio = 0
		// Canonicalize the pin list so equivalent requests share a cache
		// key: sorted by (module, part), exact duplicates dropped.
		// Validate already rejected conflicting duplicates.
		if len(o.Fix) > 0 {
			fix := append([]hypergraph.FixPin(nil), o.Fix...)
			sort.Slice(fix, func(a, b int) bool {
				if fix[a].Module != fix[b].Module {
					return fix[a].Module < fix[b].Module
				}
				return fix[a].Part < fix[b].Part
			})
			dedup := fix[:1]
			for _, p := range fix[1:] {
				if p != dedup[len(dedup)-1] {
					dedup = append(dedup, p)
				}
			}
			o.Fix = dedup
		}
	default:
		return o, fmt.Errorf("service: unknown algorithm %q", o.Algo)
	}
	if !kwayAlgo(o.Algo) {
		o.K = 0
		o.Eps = 0
		o.Fix = nil
	}
	if o.Algo != AlgoPortfolio {
		o.Budget = 0
		o.Accept = 0
	}
	if _, ok := schemes[o.Scheme]; !ok {
		return o, fmt.Errorf("service: unknown weight scheme %q", o.Scheme)
	}
	if o.Scheme == "" {
		o.Scheme = "paper"
	}
	if o.Threshold < 0 {
		o.Threshold = 0
	}
	if o.BlockSize < 0 {
		o.BlockSize = 0
	}
	return o, nil
}

// cacheKey content-addresses a request: SHA-256 over the canonicalized
// netlist plus the normalized result-determining options. Parallelism
// and Timeout are deliberately excluded — neither changes the result.
// o must already be normalized.
func cacheKey(h *igpart.Netlist, o Options) string {
	sum := sha256.New()
	sum.Write(h.CanonicalBytes())
	fmt.Fprintf(sum, "|algo=%s|scheme=%s|thr=%d|seed=%d|block=%d",
		o.Algo, o.Scheme, o.Threshold, o.Seed, o.BlockSize)
	if o.Algo == AlgoMultilevel {
		fmt.Fprintf(sum, "|levels=%d|cratio=%g", o.Levels, o.CoarseningRatio)
	}
	if kwayAlgo(o.Algo) {
		fmt.Fprintf(sum, "|k=%d|eps=%g", o.K, o.Eps)
		for _, p := range o.Fix {
			// %q-quoted names keep hostile module names from forging the
			// delimiter structure.
			fmt.Fprintf(sum, "|pin=%q:%d", p.Module, p.Part)
		}
	}
	if o.Algo == AlgoPortfolio {
		// Unlike Timeout, the race budget and acceptance bound change
		// which contender wins, so they key the entry.
		fmt.Fprintf(sum, "|budget=%d|accept=%g", o.Budget, o.Accept)
	}
	return fmt.Sprintf("%x", sum.Sum(nil))
}

// deltaCacheKey content-addresses an ECO delta job: the base netlist's
// hash plus the delta's canonical encoding plus the options that shape
// the warm-start solve. Keying on (base, delta) rather than the applied
// netlist means a re-submitted identical ECO hits without re-applying,
// and equivalent deltas (same edits, different list order) share an
// entry via Canonical's sorted encoding.
func deltaCacheKey(base *igpart.Netlist, d igpart.NetlistDelta, o Options) string {
	sum := sha256.New()
	sum.Write(base.CanonicalBytes())
	sum.Write([]byte("|"))
	sum.Write([]byte(d.Canonical()))
	fmt.Fprintf(sum, "|scheme=%s|thr=%d|seed=%d|block=%d",
		o.Scheme, o.Threshold, o.Seed, o.BlockSize)
	return fmt.Sprintf("%x", sum.Sum(nil))
}
