package service

import (
	"context"
	"time"

	"igpart/internal/fault"
)

// clock is the engine's time source, a seam so retry/backoff schedules
// are testable with a fake clock instead of wall-time sleeps.
type clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx fires, returning ctx's error in
	// the latter case — which is what makes backoff deadline-aware: a
	// job whose deadline lands mid-backoff stops waiting immediately.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 and backoffDelay live in internal/fault now, shared with
// the cluster coordinator's failover resubmission; these aliases keep
// the engine's call sites (and the schedule tests) unchanged.
func splitmix64(x uint64) uint64 { return fault.Splitmix64(x) }

func backoffDelay(attempt int, base, max time.Duration, seed uint64) time.Duration {
	return fault.BackoffDelay(attempt, base, max, seed)
}

// Health is the engine's self-assessment, split the way an orchestrator
// wants it: liveness (the engine exists and can answer) versus
// readiness (it is sensible to send it more work right now).
type Health struct {
	// Live is true as long as the engine has not been shut down.
	Live bool
	// Ready is true when the engine accepts work and is not degraded.
	Ready bool
	// Status is "ok", "degraded", or "shutdown".
	Status string
	// Reasons lists what degraded the engine, empty when Status == "ok".
	Reasons []string
	// QueueDepth and QueueCap describe current backlog.
	QueueDepth int
	QueueCap   int
	// PanicStreak is the current run of consecutive solves that panicked.
	PanicStreak int
}

// Health reports liveness and readiness. The engine degrades — Ready
// false, Status "degraded" — when the queue occupancy reaches
// Config.DegradedQueueFrac of capacity (backpressure is imminent) or
// when Config.DegradedPanicStreak consecutive solves have panicked
// (something is systematically wrong, stop routing work here). Both
// conditions self-heal: draining the queue or one clean solve restores
// readiness.
func (e *Engine) Health() Health {
	e.mu.Lock()
	closed := e.closed
	streak := e.panicStreak
	e.mu.Unlock()
	h := Health{
		Live:        !closed,
		QueueDepth:  len(e.queue),
		QueueCap:    cap(e.queue),
		PanicStreak: streak,
	}
	if closed {
		h.Status = "shutdown"
		h.Reasons = append(h.Reasons, "engine shut down")
		return h
	}
	if frac := float64(h.QueueDepth) / float64(h.QueueCap); frac >= e.cfg.DegradedQueueFrac {
		h.Reasons = append(h.Reasons, "queue occupancy high")
	}
	if streak >= e.cfg.DegradedPanicStreak {
		h.Reasons = append(h.Reasons, "consecutive solve panics")
	}
	if len(h.Reasons) > 0 {
		h.Status = "degraded"
		return h
	}
	h.Ready = true
	h.Status = "ok"
	return h
}
