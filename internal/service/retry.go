package service

import (
	"context"
	"time"
)

// clock is the engine's time source, a seam so retry/backoff schedules
// are testable with a fake clock instead of wall-time sleeps.
type clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx fires, returning ctx's error in
	// the latter case — which is what makes backoff deadline-aware: a
	// job whose deadline lands mid-backoff stops waiting immediately.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 is the jitter hash: a single mixing step of the splitmix
// generator, enough to decorrelate attempt indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffDelay returns the wait before retry number attempt (1-based):
// exponential base·2^(attempt−1), capped at max, scaled by a
// deterministic jitter factor in [½, 1) derived from seed — so
// schedules are reproducible in tests yet staggered across jobs.
func backoffDelay(attempt int, base, max time.Duration, seed uint64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter scales into [½, 1): keep half the delay, randomize the rest.
	frac := float64(splitmix64(seed^uint64(attempt))>>11) / (1 << 53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// Health is the engine's self-assessment, split the way an orchestrator
// wants it: liveness (the engine exists and can answer) versus
// readiness (it is sensible to send it more work right now).
type Health struct {
	// Live is true as long as the engine has not been shut down.
	Live bool
	// Ready is true when the engine accepts work and is not degraded.
	Ready bool
	// Status is "ok", "degraded", or "shutdown".
	Status string
	// Reasons lists what degraded the engine, empty when Status == "ok".
	Reasons []string
	// QueueDepth and QueueCap describe current backlog.
	QueueDepth int
	QueueCap   int
	// PanicStreak is the current run of consecutive solves that panicked.
	PanicStreak int
}

// Health reports liveness and readiness. The engine degrades — Ready
// false, Status "degraded" — when the queue occupancy reaches
// Config.DegradedQueueFrac of capacity (backpressure is imminent) or
// when Config.DegradedPanicStreak consecutive solves have panicked
// (something is systematically wrong, stop routing work here). Both
// conditions self-heal: draining the queue or one clean solve restores
// readiness.
func (e *Engine) Health() Health {
	e.mu.Lock()
	closed := e.closed
	streak := e.panicStreak
	e.mu.Unlock()
	h := Health{
		Live:        !closed,
		QueueDepth:  len(e.queue),
		QueueCap:    cap(e.queue),
		PanicStreak: streak,
	}
	if closed {
		h.Status = "shutdown"
		h.Reasons = append(h.Reasons, "engine shut down")
		return h
	}
	if frac := float64(h.QueueDepth) / float64(h.QueueCap); frac >= e.cfg.DegradedQueueFrac {
		h.Reasons = append(h.Reasons, "queue occupancy high")
	}
	if streak >= e.cfg.DegradedPanicStreak {
		h.Reasons = append(h.Reasons, "consecutive solve panics")
	}
	if len(h.Reasons) > 0 {
		h.Status = "degraded"
		return h
	}
	h.Ready = true
	h.Status = "ok"
	return h
}
