package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"igpart"
	"igpart/internal/hypergraph"
)

// genNetlist builds a small synthetic circuit for engine tests.
func genNetlist(t *testing.T, modules, nets int, seed int64) *igpart.Netlist {
	t.Helper()
	h, err := igpart.Generate(igpart.GenConfig{Name: "svc", Modules: modules, Nets: nets, Seed: seed})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return h
}

// waitState polls until the job reaches want (or any terminal state)
// and returns the snapshot.
func waitState(t *testing.T, j *Job, want State, timeout time.Duration) Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		s := j.Snapshot()
		if s.State == want || s.State.Terminal() {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", s.ID, s.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func shutdownNow(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestSolveMatchesDirectCall(t *testing.T) {
	h := genNetlist(t, 120, 140, 7)
	e := New(Config{Workers: 2})
	defer shutdownNow(t, e)

	job, err := e.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := job.Wait(context.Background())
	if s.State != StateDone {
		t.Fatalf("state = %s (err %v), want done", s.State, s.Err)
	}
	direct, err := igpart.IGMatch(h)
	if err != nil {
		t.Fatalf("direct IGMatch: %v", err)
	}
	if s.Result.Metrics != direct.Metrics {
		t.Fatalf("engine metrics %+v != direct %+v", s.Result.Metrics, direct.Metrics)
	}
	if len(s.Result.Sides) != h.NumModules() {
		t.Fatalf("sides has %d entries, want %d", len(s.Result.Sides), h.NumModules())
	}
	if s.Result.Stages.Find("sweep") == nil {
		t.Fatal("result carries no sweep stage span")
	}

	// Multilevel through the same engine.
	mj, err := e.Submit(Request{Netlist: h, Options: Options{Algo: AlgoMultilevel, Levels: 2}})
	if err != nil {
		t.Fatalf("submit multilevel: %v", err)
	}
	ms := mj.Wait(context.Background())
	if ms.State != StateDone {
		t.Fatalf("multilevel state = %s (err %v)", ms.State, ms.Err)
	}
	mdirect, err := igpart.MultilevelIGMatch(h, igpart.MultilevelOptions{Levels: 2})
	if err != nil {
		t.Fatalf("direct multilevel: %v", err)
	}
	if ms.Result.Metrics != mdirect.Metrics {
		t.Fatalf("multilevel metrics %+v != direct %+v", ms.Result.Metrics, mdirect.Metrics)
	}
}

func TestCacheHitOnIdenticalResubmit(t *testing.T) {
	h := genNetlist(t, 100, 120, 11)
	e := New(Config{Workers: 1})
	defer shutdownNow(t, e)

	var solves atomic.Int64
	real := e.solveFn
	e.solveFn = func(ctx context.Context, req Request, o Options) (*Result, error) {
		solves.Add(1)
		return real(ctx, req, o)
	}

	first := func() Snapshot {
		j, err := e.Submit(Request{Netlist: h})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		return j.Wait(context.Background())
	}
	s1 := first()
	if s1.State != StateDone || s1.Cached {
		t.Fatalf("first run: state=%s cached=%v", s1.State, s1.Cached)
	}

	// Same netlist content under permuted net order: the canonical key
	// must collapse the two.
	perm := igpart.NewBuilder().SetNumModules(h.NumModules())
	for e := h.NumNets() - 1; e >= 0; e-- {
		perm.AddNet(h.Pins(e)...)
	}
	j2, err := e.Submit(Request{Netlist: perm.Build()})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	s2 := j2.Wait(context.Background())
	if s2.State != StateDone || !s2.Cached {
		t.Fatalf("resubmit: state=%s cached=%v, want done from cache", s2.State, s2.Cached)
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want 1 (second run must be a pure cache hit)", got)
	}
	if s2.Result != s1.Result {
		t.Fatal("cache hit returned a different result object")
	}
	reg := e.Metrics().Snapshot()
	if reg.Counters["service.cache_hits"] != 1 || reg.Counters["service.cache_misses"] != 1 {
		t.Fatalf("cache counters = %+v, want 1 hit / 1 miss", reg.Counters)
	}

	// Different options (seed) must miss.
	j3, err := e.Submit(Request{Netlist: h, Options: Options{Seed: 99}})
	if err != nil {
		t.Fatalf("submit seed=99: %v", err)
	}
	if s3 := j3.Wait(context.Background()); s3.Cached {
		t.Fatal("different seed was served from cache")
	}

	// Parallelism is not part of the key: results are bit-identical.
	j4, err := e.Submit(Request{Netlist: h, Options: Options{Parallelism: 2}})
	if err != nil {
		t.Fatalf("submit p=2: %v", err)
	}
	if s4 := j4.Wait(context.Background()); !s4.Cached {
		t.Fatal("parallelism-only change missed the cache")
	}
}

// blockingEngine returns an engine whose solver blocks until release is
// closed (or the job context fires), for deterministic lifecycle tests.
func blockingEngine(cfg Config) (*Engine, chan struct{}) {
	e := New(cfg)
	release := make(chan struct{})
	e.solveFn = func(ctx context.Context, req Request, o Options) (*Result, error) {
		select {
		case <-release:
			return &Result{Algo: o.Algo, Sides: []igpart.Side{igpart.U, igpart.W}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return e, release
}

func TestQueueFullBackpressure(t *testing.T) {
	h := genNetlist(t, 20, 24, 3)
	e, release := blockingEngine(Config{Workers: 1, QueueDepth: 1})
	defer shutdownNow(t, e)

	j1, err := e.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitState(t, j1, StateRunning, 5*time.Second) // worker occupied
	if _, err := e.Submit(Request{Netlist: h}); err != nil {
		t.Fatalf("submit 2 (fills queue): %v", err)
	}
	if _, err := e.Submit(Request{Netlist: h}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit 3 = %v, want ErrQueueFull", err)
	}
	if got := e.Metrics().Snapshot().Counters["service.jobs_rejected"]; got != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", got)
	}
	close(release)
}

func TestCancelQueuedJobIsImmediate(t *testing.T) {
	h := genNetlist(t, 20, 24, 3)
	e, release := blockingEngine(Config{Workers: 1, QueueDepth: 4})
	defer shutdownNow(t, e)

	j1, _ := e.Submit(Request{Netlist: h})
	waitState(t, j1, StateRunning, 5*time.Second)
	j2, err := e.Submit(Request{Netlist: h})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	if !e.Cancel(j2.ID()) {
		t.Fatal("cancel: unknown job")
	}
	s := j2.Snapshot() // no waiting: a queued cancel finalizes inline
	if s.State != StateCancelled || !errors.Is(s.Err, ErrCancelled) {
		t.Fatalf("queued cancel: state=%s err=%v", s.State, s.Err)
	}
	if e.Cancel("job-nope") {
		t.Fatal("cancel of unknown ID reported success")
	}
	close(release)
}

func TestDeadlineFailsJob(t *testing.T) {
	h := genNetlist(t, 20, 24, 3)
	e, _ := blockingEngine(Config{Workers: 1})
	defer shutdownNow(t, e)

	j, err := e.Submit(Request{Netlist: h, Options: Options{Timeout: 20 * time.Millisecond}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := j.Wait(context.Background())
	if s.State != StateFailed || !errors.Is(s.Err, context.DeadlineExceeded) {
		t.Fatalf("deadline job: state=%s err=%v, want failed/DeadlineExceeded", s.State, s.Err)
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	h := genNetlist(t, 20, 24, 3)
	e, release := blockingEngine(Config{Workers: 1})

	j, _ := e.Submit(Request{Netlist: h})
	waitState(t, j, StateRunning, 5*time.Second)
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if s := j.Snapshot(); s.State != StateDone {
		t.Fatalf("in-flight job after drain: %s, want done", s.State)
	}
	if _, err := e.Submit(Request{Netlist: h}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after shutdown = %v, want ErrShutdown", err)
	}
	// Shutdown is idempotent.
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	h := genNetlist(t, 20, 24, 3)
	e, _ := blockingEngine(Config{Workers: 1}) // never released

	j, _ := e.Submit(Request{Netlist: h})
	waitState(t, j, StateRunning, 5*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v, want DeadlineExceeded", err)
	}
	if s := j.Snapshot(); s.State != StateCancelled || !errors.Is(s.Err, ErrShutdown) {
		t.Fatalf("straggler: state=%s err=%v, want cancelled/ErrShutdown", s.State, s.Err)
	}
}

// TestCancelMidSweep is the headline cancellation test: a real IG-Match
// job on the largest netgen fixture (Prim2) is cancelled while running,
// must reach the cancelled state within 2 seconds, and the worker must
// remain usable for the next job.
func TestCancelMidSweep(t *testing.T) {
	cfg, ok := igpart.Benchmark("Prim2")
	if !ok {
		t.Fatal("Prim2 preset missing")
	}
	h, err := igpart.Generate(cfg)
	if err != nil {
		t.Fatalf("generate Prim2: %v", err)
	}
	e := New(Config{Workers: 1})
	defer shutdownNow(t, e)

	// Serial sweep keeps the single worker busy longest.
	j, err := e.Submit(Request{Netlist: h, Options: Options{Parallelism: 1}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, j, StateRunning, 10*time.Second)
	time.Sleep(30 * time.Millisecond) // bite into eigensolve/sweep
	t0 := time.Now()
	if !e.Cancel(j.ID()) {
		t.Fatal("cancel: unknown job")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	s := j.Wait(ctx)
	if !s.State.Terminal() {
		t.Fatalf("job not terminal %v after cancel", time.Since(t0))
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want < 2s", elapsed)
	}
	if s.State != StateCancelled {
		t.Fatalf("state = %s (err %v), want cancelled", s.State, s.Err)
	}
	if got := e.Metrics().Snapshot().Counters["service.jobs_cancelled"]; got != 1 {
		t.Fatalf("jobs_cancelled = %d, want 1", got)
	}

	// The worker survives and serves the next job.
	small := genNetlist(t, 80, 90, 5)
	j2, err := e.Submit(Request{Netlist: small})
	if err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	if s2 := j2.Wait(context.Background()); s2.State != StateDone {
		t.Fatalf("post-cancel job: state=%s err=%v", s2.State, s2.Err)
	}
}

func TestOptionsNormalizeAndKey(t *testing.T) {
	if _, err := (Options{Algo: "anneal"}).normalize(); err == nil {
		t.Fatal("unknown algo accepted")
	}
	if _, err := (Options{Scheme: "bogus"}).normalize(); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := (&Engine{}).Submit(Request{}); err == nil {
		t.Fatal("nil netlist accepted")
	}

	h := genNetlist(t, 30, 36, 2)
	base, _ := Options{}.normalize()
	k1 := cacheKey(h, base)
	par, _ := Options{Parallelism: 8, Timeout: time.Minute}.normalize()
	if cacheKey(h, par) != k1 {
		t.Fatal("parallelism/timeout leaked into the cache key")
	}
	ml, _ := Options{Algo: AlgoMultilevel}.normalize()
	if cacheKey(h, ml) == k1 {
		t.Fatal("algo not part of the cache key")
	}
	ml2, _ := Options{Algo: AlgoMultilevel, Levels: 4}.normalize()
	if cacheKey(h, ml2) == cacheKey(h, ml) {
		t.Fatal("levels not part of the multilevel cache key")
	}
	// Levels is irrelevant (zeroed) for flat igmatch.
	flatLv, _ := Options{Algo: AlgoIGMatch, Levels: 5}.normalize()
	if cacheKey(h, flatLv) != k1 {
		t.Fatal("levels leaked into the flat igmatch cache key")
	}
}

// TestKWayJobEndToEnd drives a balanced k-way job with pins through the
// real engine: the result must carry the multiway fields, honor the
// pins, and hit the cache on resubmission.
func TestKWayJobEndToEnd(t *testing.T) {
	h := genNetlist(t, 40, 60, 9)
	e := New(Config{Workers: 1})
	defer shutdownNow(t, e)
	req := Request{Netlist: h, Options: Options{
		Algo: AlgoKWay, K: 4, Eps: 0.1,
		Fix: []hypergraph.FixPin{
			{Module: h.ModuleName(0), Part: 3},
			{Module: h.ModuleName(1), Part: 0},
		},
	}}
	j, err := e.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := j.Wait(context.Background())
	if s.State != StateDone {
		t.Fatalf("state=%s err=%v, want done", s.State, s.Err)
	}
	res := s.Result
	if res.Algo != AlgoKWay || res.K != 4 {
		t.Fatalf("algo=%s k=%d, want kway/4", res.Algo, res.K)
	}
	if len(res.Parts) != 40 || len(res.PartSizes) != 4 {
		t.Fatalf("parts=%d sizes=%d, want 40/4", len(res.Parts), len(res.PartSizes))
	}
	if res.Sides != nil {
		t.Fatalf("kway result carries bipartition sides")
	}
	for p, sz := range res.PartSizes {
		if sz == 0 || sz > res.Cap {
			t.Fatalf("part %d size %d outside (0,%d]", p, sz, res.Cap)
		}
	}
	if res.Parts[0] != 3 || res.Parts[1] != 0 {
		t.Fatalf("pins ignored: Parts[0]=%d Parts[1]=%d, want 3/0", res.Parts[0], res.Parts[1])
	}

	// Same request, pins reordered: must be a cache hit.
	req2 := req
	req2.Options.Fix = []hypergraph.FixPin{
		{Module: h.ModuleName(1), Part: 0},
		{Module: h.ModuleName(0), Part: 3},
	}
	j2, err := e.Submit(req2)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if s2 := j2.Wait(context.Background()); s2.State != StateDone || !s2.Cached {
		t.Fatalf("resubmission: state=%s cached=%v, want done/cached", s2.State, s2.Cached)
	}
}

// TestKWaySpectralJob smokes the spectral engine through the service.
func TestKWaySpectralJob(t *testing.T) {
	h := genNetlist(t, 30, 45, 4)
	e := New(Config{Workers: 1})
	defer shutdownNow(t, e)
	j, err := e.Submit(Request{Netlist: h, Options: Options{Algo: AlgoKWaySpectral, K: 3, Eps: 0.1}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := j.Wait(context.Background())
	if s.State != StateDone {
		t.Fatalf("state=%s err=%v, want done", s.State, s.Err)
	}
	if s.Result.K != 3 || len(s.Result.PartSizes) != 3 {
		t.Fatalf("K=%d sizes=%v", s.Result.K, s.Result.PartSizes)
	}
}

// TestKWayCancelMidSweep mirrors TestCancelMidSweep for the k-way
// engine: a Prim2 k=4 job cancelled while running must reach the
// cancelled state within 2 seconds.
func TestKWayCancelMidSweep(t *testing.T) {
	cfg, ok := igpart.Benchmark("Prim2")
	if !ok {
		t.Fatal("Prim2 preset missing")
	}
	h, err := igpart.Generate(cfg)
	if err != nil {
		t.Fatalf("generate Prim2: %v", err)
	}
	e := New(Config{Workers: 1})
	defer shutdownNow(t, e)
	j, err := e.Submit(Request{Netlist: h, Options: Options{
		Algo: AlgoKWay, K: 4, Eps: 0.1, Parallelism: 1,
	}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, j, StateRunning, 10*time.Second)
	time.Sleep(30 * time.Millisecond)
	t0 := time.Now()
	if !e.Cancel(j.ID()) {
		t.Fatal("cancel: unknown job")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	s := j.Wait(ctx)
	if !s.State.Terminal() {
		t.Fatalf("job not terminal %v after cancel", time.Since(t0))
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want < 2s", elapsed)
	}
	if s.State != StateCancelled {
		t.Fatalf("state = %s (err %v), want cancelled", s.State, s.Err)
	}
}
