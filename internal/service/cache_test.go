package service

import (
	"fmt"
	"testing"

	"igpart/internal/obs"
)

func TestLRUEviction(t *testing.T) {
	reg := new(obs.Registry)
	c := newLRU(2, reg, nil)
	r1, r2, r3 := &Result{}, &Result{}, &Result{}

	c.put("a", r1)
	c.put("b", r2)
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", r3) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if got, ok := c.get("a"); !ok || got != r1 {
		t.Fatal("a evicted or swapped")
	}
	if got, ok := c.get("c"); !ok || got != r3 {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}

	// Overwriting an existing key refreshes, not grows.
	c.put("c", r2)
	if got, _ := c.get("c"); got != r2 {
		t.Fatal("overwrite did not replace the value")
	}
	if c.len() != 2 {
		t.Fatalf("len after overwrite = %d, want 2", c.len())
	}

	s := reg.Snapshot()
	if s.Counters["service.cache_evictions"] != 1 {
		t.Fatalf("evictions = %d, want 1", s.Counters["service.cache_evictions"])
	}
	// 4 hits (a, a, c, c), 1 miss (b after eviction).
	if s.Counters["service.cache_hits"] != 4 || s.Counters["service.cache_misses"] != 1 {
		t.Fatalf("hits/misses = %d/%d, want 4/1",
			s.Counters["service.cache_hits"], s.Counters["service.cache_misses"])
	}
}

func TestLRUDisabled(t *testing.T) {
	var c *lru // capacity <= 0 yields nil; all methods must be nil-safe
	if newLRU(0, nil, nil) != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.put("k", &Result{})
	if _, ok := c.get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache has nonzero length")
	}
}

func TestLRUCapacityStress(t *testing.T) {
	c := newLRU(8, nil, nil)
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("k%d", i), &Result{})
	}
	if c.len() != 8 {
		t.Fatalf("len = %d, want capacity 8", c.len())
	}
}
