package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/eigen"
	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/partition"
)

// twoClusters builds a netlist with two internally dense clusters of size
// k joined by `bridges` two-pin nets — a planted natural ratio cut.
func twoClusters(k, bridges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(2 * k)
	for c := 0; c < 2; c++ {
		base := c * k
		// Chain to guarantee connectivity, then random 2–3 pin nets.
		for i := 0; i < k-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*k; e++ {
			x, y, z := rng.Intn(k), rng.Intn(k), rng.Intn(k)
			if rng.Intn(2) == 0 {
				b.AddNet(base+x, base+y)
			} else {
				b.AddNet(base+x, base+y, base+z)
			}
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
	}
	return b.Build()
}

func TestIGAdjacency(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)    // net 0
	b.AddNet(1, 2)    // net 1 (shares module 1 with net 0)
	b.AddNet(3, 4)    // net 2 (disjoint)
	b.AddNet(0, 2, 3) // net 3 (shares with all)
	h := b.Build()
	adj := IGAdjacency(h)
	want := map[int][]int{0: {1, 3}, 1: {0, 3}, 2: {3}, 3: {0, 1, 2}}
	for a, nbrs := range adj {
		got := map[int]bool{}
		for _, x := range nbrs {
			got[x] = true
		}
		if len(got) != len(want[a]) {
			t.Errorf("adj[%d] = %v, want %v", a, nbrs, want[a])
			continue
		}
		for _, x := range want[a] {
			if !got[x] {
				t.Errorf("adj[%d] = %v missing %d", a, nbrs, x)
			}
		}
	}
}

func TestSortNetsByVector(t *testing.T) {
	order := SortNetsByVector([]float64{0.3, -1, 0.3, 0})
	if order[0] != 1 || order[1] != 3 {
		t.Errorf("order = %v", order)
	}
	// Stable tie-break: net 0 before net 2.
	if order[2] != 0 || order[3] != 2 {
		t.Errorf("tie-break not stable: %v", order)
	}
}

func TestFigure4FewerThanMatching(t *testing.T) {
	// The Figure 4 phenomenon: a loser net whose modules all migrate to one
	// side ends up uncut, so the completed partition cuts strictly fewer
	// nets than the maximum matching bound.
	b := hypergraph.NewBuilder()
	b.AddNamedNet("s", 0, 1) // L, disjoint from everything
	b.AddNamedNet("v", 2, 3) // L, the loser-to-be
	b.AddNamedNet("w", 2, 4) // R, shares module 2 with v
	b.AddNamedNet("u", 3, 5) // R, shares module 3 with v
	h := b.Build()
	inR := []bool{false, false, true, true}
	p, met, mm, err := CompleteNetPartition(h, inR)
	if err != nil {
		t.Fatal(err)
	}
	if mm != 1 {
		t.Fatalf("matching size = %d, want 1", mm)
	}
	if met.CutNets != 0 {
		t.Fatalf("cut = %d, want 0 (< matching bound)", met.CutNets)
	}
	// Modules {0,1} on one side, {2,3,4,5} on the other.
	side0 := p.Side(0)
	if p.Side(1) != side0 {
		t.Error("modules 0,1 split apart")
	}
	for v := 2; v <= 5; v++ {
		if p.Side(v) == side0 {
			t.Errorf("module %d ended up with the s-side", v)
		}
	}
}

func TestTheorem5CutAtMostMatching(t *testing.T) {
	// For any net partition, the completed module partition cuts at most
	// |MM(B)| nets (Theorems 4–5).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		m := 2 + rng.Intn(20)
		for e := 0; e < m; e++ {
			k := 2 + rng.Intn(4)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		inR := make([]bool, h.NumNets())
		any := false
		for e := range inR {
			inR[e] = rng.Intn(2) == 0
			any = any || inR[e]
		}
		if !any {
			inR[0] = true
		}
		_, met, mm, err := CompleteNetPartition(h, inR)
		if err != nil {
			return true // no proper completion exists at this split; fine
		}
		return met.CutNets <= mm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPartitionTwoClusters(t *testing.T) {
	h := twoClusters(30, 1, 7)
	res, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	met := res.Metrics
	if met.SizeU == 0 || met.SizeW == 0 {
		t.Fatal("improper partition")
	}
	// The single bridge net is the natural cut.
	if met.CutNets > 2 {
		t.Errorf("cut = %d, want ≤ 2 (single planted bridge)", met.CutNets)
	}
	// Each cluster should be (almost) whole on one side.
	side0 := res.Partition.Side(0)
	misplaced := 0
	for v := 0; v < 30; v++ {
		if res.Partition.Side(v) != side0 {
			misplaced++
		}
	}
	for v := 30; v < 60; v++ {
		if res.Partition.Side(v) == side0 {
			misplaced++
		}
	}
	if misplaced > 2 {
		t.Errorf("%d modules on the wrong side of the planted split", misplaced)
	}
	if res.BestMatching < met.CutNets {
		t.Errorf("Theorem 5 violated: cut %d > matching %d", met.CutNets, res.BestMatching)
	}
	if res.Lambda2 < 0 {
		t.Errorf("λ2 = %v, want ≥ 0", res.Lambda2)
	}
}

func TestPartitionValidity(t *testing.T) {
	// IG-Match always returns a proper partition consistent with its
	// metrics, on arbitrary random netlists.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < n; e++ {
			k := 2 + rng.Intn(3)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		res, err := Partition(h, Options{Eigen: eigenOpts(seed)})
		if err != nil {
			return true // degenerate instance (e.g. all nets identical)
		}
		met := partition.Evaluate(h, res.Partition)
		return met == res.Metrics && met.SizeU > 0 && met.SizeW > 0 &&
			met.CutNets <= res.BestMatching
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPartitionWithOrderMatchesPartition(t *testing.T) {
	h := twoClusters(15, 2, 3)
	res, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := PartitionWithOrder(h, res.NetOrder, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics != res.Metrics {
		t.Errorf("replayed order gives %+v, direct run %+v", res2.Metrics, res.Metrics)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	h := twoClusters(20, 2, 5)
	a, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics || a.BestRank != b.BestRank {
		t.Errorf("IG-Match not deterministic: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestPartitionErrors(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	h := b.Build()
	if _, err := Partition(h, Options{}); err == nil {
		t.Error("accepted single-net instance")
	}
	one := hypergraph.NewBuilder()
	one.SetNumModules(1)
	one.AddNet(0)
	one.AddNet(0)
	if _, err := Partition(one.Build(), Options{}); err == nil {
		t.Error("accepted single-module instance")
	}
	if _, err := PartitionWithOrder(h, []int{0, 1, 2}, Options{}); err == nil {
		t.Error("accepted wrong-length order")
	}
	if _, _, _, err := CompleteNetPartition(h, []bool{true, false, true}); err == nil {
		t.Error("accepted wrong-length inR")
	}
}

func TestTraceRecords(t *testing.T) {
	h := twoClusters(10, 1, 2)
	var trace []SplitRecord
	res, err := Partition(h, Options{Trace: &trace})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != h.NumNets()-1 {
		t.Fatalf("trace has %d records, want %d", len(trace), h.NumNets()-1)
	}
	foundBest := false
	for i, r := range trace {
		if r.Rank != i+1 {
			t.Fatalf("trace rank %d at index %d", r.Rank, i)
		}
		if r.CutNets > r.MatchingSize {
			t.Errorf("rank %d: cut %d exceeds matching %d", r.Rank, r.CutNets, r.MatchingSize)
		}
		if r.Rank == res.BestRank && r.RatioCut == res.Metrics.RatioCut {
			foundBest = true
		}
	}
	if !foundBest {
		t.Error("best split not present in trace")
	}
}

func TestSweepBestMatchesReplayedCompletion(t *testing.T) {
	// The incremental sweep's winner must agree with an independent
	// from-scratch completion of the same net prefix split.
	h := twoClusters(18, 2, 21)
	res, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inR := make([]bool, h.NumNets())
	for i := 0; i < res.BestRank; i++ {
		inR[res.NetOrder[i]] = true
	}
	_, met, mm, err := CompleteNetPartition(h, inR)
	if err != nil {
		t.Fatal(err)
	}
	if met != res.Metrics {
		t.Errorf("replayed completion %+v != sweep best %+v", met, res.Metrics)
	}
	if mm != res.BestMatching {
		t.Errorf("replayed matching %d != sweep matching %d", mm, res.BestMatching)
	}
}

func TestSweepBestIsMinOverTrace(t *testing.T) {
	h := twoClusters(15, 3, 31)
	var trace []SplitRecord
	res, err := Partition(h, Options{Trace: &trace})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range trace {
		if rec.RatioCut > 0 && rec.RatioCut < res.Metrics.RatioCut-1e-12 {
			t.Fatalf("trace rank %d has better ratio %v than reported best %v",
				rec.Rank, rec.RatioCut, res.Metrics.RatioCut)
		}
	}
}

func TestRecursiveCompletionNeverWorse(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		h := twoClusters(12, 3, seed)
		plain, err := Partition(h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Partition(h, Options{RecursionDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Metrics.RatioCut > plain.Metrics.RatioCut {
			t.Errorf("seed %d: recursion worsened ratio cut: %v > %v",
				seed, rec.Metrics.RatioCut, plain.Metrics.RatioCut)
		}
	}
}

func TestThresholdedIGStillCorrect(t *testing.T) {
	// Thresholding only alters the eigen ordering; completions must stay
	// valid partitions obeying the matching bound.
	h := twoClusters(15, 2, 9)
	res, err := Partition(h, Options{IG: netmodel.IGOptions{Threshold: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Error("improper partition under thresholding")
	}
	if res.Metrics.CutNets > res.BestMatching {
		t.Error("matching bound violated under thresholding")
	}
}

// eigenOpts gives per-seed eigen options so quick.Check cases differ.
func eigenOpts(seed int64) eigen.Options {
	return eigen.Options{Seed: seed}
}
