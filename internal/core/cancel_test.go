package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"igpart/internal/netgen"
)

func TestPartitionBackgroundContextBitIdentical(t *testing.T) {
	cfg, _ := netgen.ByName("bm1")
	h, err := netgen.Generate(cfg.Scaled(0.25))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	plain, err := Partition(h, Options{})
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	for _, p := range []int{1, 4} {
		withCtx, err := Partition(h, Options{Ctx: context.Background(), Parallelism: p})
		if err != nil {
			t.Fatalf("ctx run (p=%d): %v", p, err)
		}
		if withCtx.Metrics != plain.Metrics || withCtx.BestRank != plain.BestRank ||
			!reflect.DeepEqual(withCtx.Partition.Sides(), plain.Partition.Sides()) {
			t.Fatalf("p=%d: background context changed the result", p)
		}
	}
}

func TestPartitionCancelled(t *testing.T) {
	cfg, _ := netgen.ByName("bm1")
	h, err := netgen.Generate(cfg.Scaled(0.5))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// A pre-cancelled context stops the pipeline in the eigensolve.
	if _, err := Partition(h, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Partition = %v, want wrapped context.Canceled", err)
	}

	// PartitionWithOrder skips the eigensolve, exercising the sweep-shard
	// cancellation path — serial and sharded.
	order := make([]int, h.NumNets())
	for i := range order {
		order[i] = i
	}
	for _, p := range []int{1, 4} {
		_, err := PartitionWithOrder(h, order, Options{Ctx: ctx, Parallelism: p})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep p=%d: err = %v, want wrapped context.Canceled", p, err)
		}
	}
}
