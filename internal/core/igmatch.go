// Package core implements IG-Match, the paper's contribution: spectral
// ratio-cut partitioning of a netlist via the intersection graph of its
// hypergraph.
//
// The pipeline is exactly the one of Sections 2–3:
//
//  1. Build the intersection graph G' of the netlist (one vertex per net)
//     with the Section 2.2 edge weighting, and its Laplacian Q' = D' − A'.
//  2. Compute the second-smallest eigenpair of Q' (Lanczos); sorting the
//     eigenvector yields a linear ordering of the nets.
//  3. Sweep every split of the net ordering. For each split (L, R), the
//     conflict bipartite graph B(L, R, E_B) is maintained incrementally
//     along with a maximum matching (package bipartite). Phase I extracts
//     the winner nets — a maximum independent set in B — via the Even/Odd
//     alternating-path construction; Phase II assigns the leftover modules
//     in bulk to whichever side gives the better ratio cut.
//  4. Return the best module partition over all splits.
//
// Theorems 4–5 guarantee each completion cuts at most |maximum matching(B)|
// nets; the sweep costs O(m·(m+e)) total for m nets (Theorem 6).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"igpart/internal/bipartite"
	"igpart/internal/eigen"
	"igpart/internal/fault"
	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/obs"
	"igpart/internal/partition"
	"igpart/internal/sparse"
)

// Options configures an IG-Match run. The zero value reproduces the paper's
// configuration.
type Options struct {
	// IG configures intersection-graph construction for the eigensolve
	// (weight scheme, optional thresholding). The conflict graph used for
	// matching always reflects true module sharing regardless of
	// thresholding, so completions stay correct.
	IG netmodel.IGOptions
	// Eigen tunes the Lanczos solver.
	Eigen eigen.Options
	// RecursionDepth, when positive, enables the recursive extension
	// sketched in Section 3: at the best split, the unassigned modules of
	// the residual core are partitioned by a recursive IG-Match call
	// instead of only being bulk-assigned, and the better completion wins.
	// The value bounds the recursion depth.
	RecursionDepth int
	// Trace, when non-nil, receives one record per sweep split.
	Trace *[]SplitRecord
	// Parallelism bounds the number of concurrent sweep shards: the rank
	// range 1..m−1 is cut into that many contiguous pieces, each swept by
	// its own incrementally-maintained matcher bootstrapped from scratch
	// (Hopcroft–Karp) at the shard boundary. 0 uses GOMAXPROCS; 1 forces
	// the serial engine. The result is bit-identical for every value: the
	// shard reduction breaks metric ties by lowest rank, exactly the order
	// the serial sweep encounters splits in.
	Parallelism int
	// Rec, when non-nil, receives hierarchical stage spans (IG build,
	// Laplacian assembly, eigensolve cycles, sweep shards) with wall
	// times and counters, plus run-level metrics. Tracing never changes
	// the result; nil means off and costs nothing on the hot path.
	Rec obs.Recorder
	// Ctx, when non-nil, enables cooperative cancellation: every sweep
	// shard polls it at split granularity and the eigensolver inherits it
	// (polled per Lanczos cycle and every few Krylov steps), so a
	// cancelled run returns promptly with an error wrapping ctx.Err(). A
	// nil or background context changes nothing — results stay
	// bit-identical.
	Ctx context.Context
	// Fault, when non-nil, arms deterministic fault-injection points in
	// the run (eigen.noconverge before each iterative eigensolve,
	// sweep.slow-shard at each shard's start). nil — the production
	// default — disarms every point at zero cost; injection with a fixed
	// seed is reproducible across runs.
	Fault *fault.Injector
	// Balance, when non-nil, restricts accepted completions to those
	// whose U side holds between MinU and MaxU modules; the sweep is
	// pruned to the rank window that can plausibly reach it, and splits
	// whose completions all fall outside count as infeasible. nil — the
	// production default — imposes nothing and keeps the sweep
	// bit-identical to the paper engine. See constrained.go.
	Balance *Balance
	// SweepLo and SweepHi, when SweepHi > 0, restrict the sweep to the
	// 1-based rank window [SweepLo, SweepHi] (intersected with whatever
	// window a Balance budget already imposes). The caller asserts that
	// the globally best split lies inside the window: a warm start from
	// a previous run on a perturbed netlist sweeps only ranks near the
	// previous winner instead of all m−1 splits. Because the shard
	// reduction keeps the earliest best split, a window that contains
	// the full-sweep winner reproduces the full sweep's result exactly.
	// Zero values (the default) sweep everything.
	SweepLo, SweepHi int
	// FixedSides, when non-nil, pins modules before the sweep:
	// FixedSides[v] = 0 pins module v to side U, 1 pins it to side W,
	// and −1 leaves it free. A pinned module pre-assigns its nets'
	// sides in every König completion and is never reassigned by
	// Phase II. nil leaves every module free, bit-identical to the
	// unpinned engine. Incompatible with RecursionDepth, which is
	// ignored while constraints are active.
	FixedSides []int8
}

// ctxErr polls an optional context: nil contexts never cancel.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// SplitRecord captures the state of one sweep split for analysis. Splits
// where no proper completion exists (every option left a side empty) are
// recorded with CutNets = −1 and RatioCut = +Inf.
type SplitRecord struct {
	Rank         int     // nets moved to R so far (1..m−1)
	MatchingSize int     // |MM(B)| — upper bound on the completed cut
	CutNets      int     // cut of the better completion at this split
	RatioCut     float64 // ratio cut of the better completion
}

// Result is the outcome of an IG-Match run.
type Result struct {
	// Partition is the best module bipartition found.
	Partition *partition.Bipartition
	// Metrics evaluates Partition on the input netlist.
	Metrics partition.Metrics
	// NetOrder is the eigenvector-sorted net ordering driving the sweep.
	NetOrder []int
	// Lambda2 is the second-smallest eigenvalue of Q'(G').
	Lambda2 float64
	// BestRank is the number of nets on the R side at the winning split.
	BestRank int
	// BestMatching is |MM(B)| at the winning split; by Theorem 5 the
	// completed partition cuts at most this many nets.
	BestMatching int
	// Recursed reports whether the recursive completion improved on the
	// bulk Phase II assignment at the winning split.
	Recursed bool
}

// Partition runs IG-Match on the netlist h.
func Partition(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	m := h.NumNets()
	if m < 2 {
		return Result{}, errors.New("core: IG-Match needs at least 2 nets")
	}
	if h.NumModules() < 2 {
		return Result{}, errors.New("core: IG-Match needs at least 2 modules")
	}
	order, lambda2, err := fiedlerOrder(h, opts)
	if err != nil {
		return Result{}, err
	}
	res, err := sweep(h, order, opts)
	if err != nil {
		return Result{}, err
	}
	res.Lambda2 = lambda2
	return res, nil
}

// fiedlerOrder runs pipeline steps 1–2: build the intersection graph and
// its Laplacian, solve for the Fiedler pair, and sort the nets by
// eigenvector component. Each stage gets its own span; the eigensolve
// span doubles as the recorder for the solver's per-cycle detail.
func fiedlerOrder(h *hypergraph.Hypergraph, opts Options) ([]int, float64, error) {
	rec := obs.OrNop(opts.Rec)
	sp := rec.StartSpan("ig-build")
	g := netmodel.IntersectionGraph(h, opts.IG)
	sp.Count("nets", int64(h.NumNets()))
	sp.Count("ig-edges", int64(g.OffDiagNNZ()/2))
	sp.End()

	sp = rec.StartSpan("laplacian")
	q := sparse.Laplacian(g)
	sp.End()

	esp := rec.StartSpan("eigensolve")
	eo := opts.Eigen
	if eo.Rec == nil {
		eo.Rec = esp
	}
	if eo.Ctx == nil {
		eo.Ctx = opts.Ctx
	}
	if eo.Fault == nil {
		eo.Fault = opts.Fault
	}
	fied, err := eigen.Fiedler(q, eo)
	esp.End()
	if err != nil {
		return nil, 0, fmt.Errorf("core: eigensolve failed: %w", err)
	}
	rec.Metrics().Gauge("eigen.lambda2").Set(fied.Lambda2)
	return SortNetsByVector(fied.Vector), fied.Lambda2, nil
}

// PartitionWithOrder runs the IG-Match sweep over an externally supplied
// net ordering (a permutation of 0..NumNets−1). It exposes the completion
// machinery independently of the eigensolve, which the tests and the
// recursive extension rely on.
func PartitionWithOrder(h *hypergraph.Hypergraph, order []int, opts Options) (Result, error) {
	if len(order) != h.NumNets() {
		return Result{}, fmt.Errorf("core: order has %d entries, want %d", len(order), h.NumNets())
	}
	return sweep(h, order, opts)
}

// SortNetsByVector returns net indices sorted by ascending eigenvector
// component, with index order breaking ties deterministically.
func SortNetsByVector(x []float64) []int {
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return x[order[a]] < x[order[b]] })
	return order
}

// IGAdjacency builds unweighted intersection-graph adjacency lists: nets a
// and b are adjacent iff they share at least one module. This is the host
// graph for the conflict bipartite graph B.
//
// The lists share one backing array sized by an exact counting pass, so
// building costs two pin-bucket sweeps but a single allocation — at 10⁵+
// nets the per-row append growth it replaces dominated peak memory.
func IGAdjacency(h *hypergraph.Hypergraph) [][]int {
	m := h.NumNets()
	adj := make([][]int, m)
	stamp := make([]int, m)
	for i := range stamp {
		stamp[i] = -1
	}
	counts := make([]int, m+1)
	for a := 0; a < m; a++ {
		for _, v := range h.Pins(a) {
			for _, b := range h.Nets(v) {
				if b == a || stamp[b] == a {
					continue
				}
				stamp[b] = a
				counts[a+1]++
			}
		}
	}
	for a := 0; a < m; a++ {
		counts[a+1] += counts[a]
	}
	backing := make([]int, counts[m])
	for i := range stamp {
		stamp[i] = -1
	}
	for a := 0; a < m; a++ {
		row := backing[counts[a]:counts[a]:counts[a+1]]
		for _, v := range h.Pins(a) {
			for _, b := range h.Nets(v) {
				if b == a || stamp[b] == a {
					continue
				}
				stamp[b] = a
				row = append(row, b)
			}
		}
		adj[a] = row
	}
	return adj
}

// sweep runs the IG-Match main loop over the given net order, dispatching
// between the serial engine (one incremental matcher walking every split)
// and the parallel sharded engine of parallel.go. Each split is evaluated
// with a single pass over the pins: both Phase II bulk options are scored
// simultaneously from the winner assignment, and a concrete partition is
// only materialized when the split improves on the shard's best so far.
func sweep(h *hypergraph.Hypergraph, order []int, opts Options) (Result, error) {
	m := h.NumNets()
	cons, err := newConstraints(opts, h.NumModules())
	if err != nil {
		return Result{}, err
	}
	rec := obs.OrNop(opts.Rec)
	sp := rec.StartSpan("conflict-adjacency")
	adj := IGAdjacency(h)
	sp.End()
	nSplits := m - 1

	// Pre-sized trace indexed by rank−1 so parallel workers write their
	// shard's slots without locks; appended to opts.Trace at the end, which
	// keeps the serial append semantics bit-identical.
	var trace []SplitRecord
	if opts.Trace != nil {
		trace = make([]SplitRecord, nSplits)
	}

	// A balance budget prunes the sweep to the rank window that can
	// plausibly reach it; unconstrained runs sweep every rank as before.
	loRank, hiRank := 1, nSplits
	if cons != nil {
		loRank, hiRank = balanceRankWindow(cons.bal, h.NumModules(), nSplits)
	}
	// An explicit sweep window (warm starts) intersects the balance
	// window; clamp to the valid rank range so callers can center a
	// window near the ends without bounds bookkeeping.
	if opts.SweepHi > 0 {
		if opts.SweepLo > loRank {
			loRank = opts.SweepLo
		}
		if opts.SweepHi < hiRank {
			hiRank = opts.SweepHi
		}
		if loRank > hiRank {
			return Result{}, fmt.Errorf("core: empty sweep window [%d,%d]", loRank, hiRank)
		}
	}

	sw := rec.StartSpan("sweep")
	shards := runShards(opts.Ctx, h, adj, order, loRank, hiRank, shardCount(opts.Parallelism, hiRank-loRank+1), trace, sw, opts.Fault, cons)

	// Deterministic reduction: shards cover ascending rank ranges, and a
	// later shard only displaces the incumbent on a strict metric
	// improvement — so metric ties resolve to the lowest rank, exactly the
	// split the serial sweep would have kept.
	best := Result{NetOrder: order}
	bestCost := partition.Metrics{RatioCut: inf()}
	var bestSets bipartite.Sets
	haveBest := false
	for _, sb := range shards {
		if sb.err != nil {
			sw.End()
			if _, ok := fault.AsPanic(sb.err); ok {
				return Result{}, fmt.Errorf("core: sweep shard panicked: %w", sb.err)
			}
			return Result{}, fmt.Errorf("core: sweep cancelled: %w", sb.err)
		}
		if sb.have && better(sb.met, bestCost) {
			bestCost = sb.met
			best.Partition = sb.part
			best.Metrics = sb.met
			best.BestRank = sb.rank
			best.BestMatching = sb.matching
			bestSets = sb.sets
			haveBest = true
		}
	}
	sw.Count("shards", int64(len(shards)))
	sw.End()
	if opts.Trace != nil {
		*opts.Trace = append(*opts.Trace, trace...)
	}
	if !haveBest {
		if cons != nil {
			return Result{}, ErrNoFeasibleCompletion
		}
		return Result{}, errors.New("core: no proper completion found (every split left one side empty)")
	}
	rec.Metrics().Gauge("sweep.best_rank").Set(float64(best.BestRank))
	rec.Metrics().Gauge("sweep.best_ratio").Set(best.Metrics.RatioCut)

	// The recursive extension's completion machinery is pin- and
	// balance-oblivious, so it only augments unconstrained runs.
	if opts.RecursionDepth > 0 && cons == nil {
		if p2, met2, ok := completeRecursive(h, bestSets, opts); ok && better(met2, best.Metrics) {
			best.Partition = p2
			best.Metrics = met2
			best.Recursed = true
		}
	}
	return best, nil
}

// shardBest is one shard's winning split, ready for the cross-shard
// reduction. err is non-nil only when the shard was cancelled mid-sweep,
// in which case the whole sweep result is discarded.
type shardBest struct {
	have     bool
	met      partition.Metrics
	part     *partition.Bipartition
	rank     int
	matching int
	sets     bipartite.Sets
	err      error
}

// sweepShard sweeps the contiguous rank range [lo, hi) with its own
// incremental matcher and completer. A shard starting past rank 1 is
// bootstrapped with a from-scratch Hopcroft–Karp matching at its boundary
// split; from there every split is handled exactly as in the serial sweep,
// so per-split trace records and the shard-local best are identical to the
// serial engine's view of the same ranks. When trace is non-nil the shard
// writes records at trace[rank−1] — disjoint slots across shards.
//
// sp is the shard's stage span. Per-split tallies stay in local integers
// regardless of tracing and are flushed to the span (and the run-wide
// registry) once at shard exit, so the traced and untraced loops execute
// the same per-split instructions.
func sweepShard(ctx context.Context, h *hypergraph.Hypergraph, adj [][]int, order []int, lo, hi int, trace []SplitRecord, sp obs.Recorder, cons *constraints) shardBest {
	var matcher *bipartite.Matcher
	if lo == 1 {
		matcher = bipartite.NewMatcher(adj)
	} else {
		inR := make([]bool, len(adj))
		for i := 0; i < lo-1; i++ {
			inR[order[i]] = true
		}
		matcher = bipartite.NewMatcherAt(adj, inR)
	}
	comp := newCompleter(h, cons)

	var sb shardBest
	bestCost := partition.Metrics{RatioCut: inf()}
	var sets bipartite.Sets
	var winners, improved, infeasible int64
	for rank := lo; rank < hi; rank++ {
		// Cooperative cancellation at split granularity: each split does
		// O(m+e) completion work, so one context poll per split is
		// negligible and keeps cancellation latency to a single split.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				sb.err = err
				break
			}
		}
		matcher.MoveToR(order[rank-1])
		matcher.WinnersInto(&sets)
		winners += int64(len(sets.EvenL) + len(sets.EvenR))
		var met partition.Metrics
		var vnSide partition.Side
		var ok bool
		if comp.cons == nil {
			met, vnSide, ok = comp.evaluate(sets)
		} else {
			met, ok = comp.evaluateConstrained(sets)
		}
		if trace != nil {
			rec := SplitRecord{
				Rank:         rank,
				MatchingSize: matcher.MatchingSize(),
				CutNets:      met.CutNets,
				RatioCut:     met.RatioCut,
			}
			if !ok {
				rec.CutNets = -1
				rec.RatioCut = math.Inf(1)
			}
			trace[rank-1] = rec
		}
		if !ok {
			infeasible++
			continue
		}
		if better(met, bestCost) {
			bestCost = met
			improved++
			sb.have = true
			sb.met = met
			sb.part = comp.materializeBest(vnSide)
			sb.rank = rank
			sb.matching = matcher.MatchingSize()
			sb.sets = copySets(sets) // sets storage is reused next split
		}
	}
	splits := int64(hi - lo)
	sp.Count("splits", splits)
	sp.Count("phase1-winners", winners)
	sp.Count("phase2-evals", splits-infeasible)
	sp.Count("infeasible", infeasible)
	sp.Count("improved", improved)
	sp.Count("augmentations", int64(matcher.Augmentations()))
	reg := sp.Metrics()
	reg.Counter("sweep.splits").Add(splits)
	reg.Counter("sweep.augmentations").Add(int64(matcher.Augmentations()))
	reg.Counter("sweep.phase1_winners").Add(winners)
	sp.End()
	return sb
}

// copySets deep-copies a winner classification whose storage is reused.
func copySets(s bipartite.Sets) bipartite.Sets {
	return bipartite.Sets{
		EvenL: append([]int(nil), s.EvenL...),
		OddL:  append([]int(nil), s.OddL...),
		EvenR: append([]int(nil), s.EvenR...),
		OddR:  append([]int(nil), s.OddR...),
		CoreL: append([]int(nil), s.CoreL...),
		CoreR: append([]int(nil), s.CoreR...),
	}
}

// completer evaluates Phase II completions with reused buffers.
type completer struct {
	h *hypergraph.Hypergraph
	// assigned holds the winner coloring: 0 = unassigned (V_N),
	// 1 = V_L (side U), 2 = V_R (side W). Pinned modules are pre-colored
	// at construction and never reset.
	assigned []uint8
	touched  []int // free modules colored at the current split, for O(1) reset

	// Constrained-engine state; nil/unused on the paper path.
	cons     *constraints
	fixedCol []uint8        // alias of cons.fixed, nil when unpinned
	affU     []int32        // per-V_N-module affinity to the colored U side
	affW     []int32        // ... and to the colored W side
	vn       []int          // V_N modules of the current split
	vnPos    []int32        // module → position in the affinity-sorted V_N order
	balX     int            // balanced completion: V_N prefix sent to U; −1 = bulk
	balSide  partition.Side // bulk side when balX < 0
}

func newCompleter(h *hypergraph.Hypergraph, cons *constraints) *completer {
	c := &completer{
		h:        h,
		assigned: make([]uint8, h.NumModules()),
		touched:  make([]int, 0, h.NumModules()),
	}
	if cons != nil {
		n := h.NumModules()
		c.cons = cons
		c.affU = make([]int32, n)
		c.affW = make([]int32, n)
		c.vn = make([]int, 0, n)
		c.vnPos = make([]int32, n)
		if cons.fixed != nil {
			c.fixedCol = cons.fixed
			copy(c.assigned, cons.fixed) // permanent colors; color() skips them
		}
	}
	return c
}

// color applies the winner assignment for the given split. Pinned modules
// keep their permanent color: winner nets color only the free modules
// around them, and the returned counts cover free modules only.
func (c *completer) color(sets bipartite.Sets) (nU, nW int) {
	for _, v := range c.touched {
		c.assigned[v] = 0
	}
	c.touched = c.touched[:0]
	for _, e := range sets.EvenL {
		for _, v := range c.h.Pins(e) {
			if c.fixedCol != nil && c.fixedCol[v] != 0 {
				continue
			}
			if c.assigned[v] == 0 {
				c.touched = append(c.touched, v)
				nU++
			} else if c.assigned[v] == 2 {
				nW-- // overlap cannot happen with a maximum matching, but
				nU++ // stay safe: latest color wins
			}
			c.assigned[v] = 1
		}
	}
	for _, e := range sets.EvenR {
		for _, v := range c.h.Pins(e) {
			if c.fixedCol != nil && c.fixedCol[v] != 0 {
				continue
			}
			if c.assigned[v] == 0 {
				c.touched = append(c.touched, v)
				nW++
			} else if c.assigned[v] == 1 {
				nU--
				nW++
			}
			c.assigned[v] = 2
		}
	}
	return nU, nW
}

// materializeBest dispatches between the unconstrained and constrained
// materializations for the completion chosen by the last evaluate call.
func (c *completer) materializeBest(vnSide partition.Side) *partition.Bipartition {
	if c.cons == nil {
		return c.materialize(vnSide)
	}
	return c.materializeConstrained()
}

// evaluate colors the winners and scores both bulk placements of the
// unassigned modules in one pass over the pins, returning the better
// option's metrics and which side V_N goes to. ok is false when both
// options leave a side empty.
func (c *completer) evaluate(sets bipartite.Sets) (partition.Metrics, partition.Side, bool) {
	nU, nW := c.color(sets)
	n := c.h.NumModules()
	nN := n - nU - nW

	cutToU, cutToW := 0, 0 // cut counts for V_N→U and V_N→W
	for e := 0; e < c.h.NumNets(); e++ {
		pins := c.h.Pins(e)
		if len(pins) < 2 {
			continue
		}
		var hasU, hasW, hasN bool
		for _, v := range pins {
			switch c.assigned[v] {
			case 1:
				hasU = true
			case 2:
				hasW = true
			default:
				hasN = true
			}
		}
		if hasW && (hasU || hasN) {
			cutToU++
		}
		if hasU && (hasW || hasN) {
			cutToW++
		}
	}

	metU := partition.Metrics{ // V_N joins U
		CutNets: cutToU, SizeU: nU + nN, SizeW: nW,
		RatioCut: partition.RatioCutFrom(cutToU, nU+nN, nW),
	}
	metW := partition.Metrics{ // V_N joins W
		CutNets: cutToW, SizeU: nU, SizeW: nW + nN,
		RatioCut: partition.RatioCutFrom(cutToW, nU, nW+nN),
	}
	okU := metU.SizeU > 0 && metU.SizeW > 0
	okW := metW.SizeU > 0 && metW.SizeW > 0
	switch {
	case okU && (!okW || !better(metW, metU)): // ties go to the U option
		return metU, sideU, true
	case okW:
		return metW, sideW, true
	default:
		return partition.Metrics{}, sideU, false
	}
}

// materialize builds the partition for the current coloring with V_N on
// the given side. Must be called before the next evaluate.
func (c *completer) materialize(vnSide partition.Side) *partition.Bipartition {
	sides := make([]partition.Side, c.h.NumModules())
	for v := range sides {
		switch c.assigned[v] {
		case 1:
			sides[v] = sideU
		case 2:
			sides[v] = sideW
		default:
			sides[v] = vnSide
		}
	}
	return partition.FromSides(sides)
}

func inf() float64 { return math.Inf(1) }

// better orders candidate completions: primarily by ratio cut, then by
// fewer cut nets, making the sweep deterministic.
func better(a, b partition.Metrics) bool {
	if a.RatioCut != b.RatioCut {
		return a.RatioCut < b.RatioCut
	}
	return a.CutNets < b.CutNets
}

const (
	sideU partition.Side = partition.U
	sideW partition.Side = partition.W
)

// assignWinners colors modules by the winner nets: V_L ← modules of Even(L)
// nets (side U), V_R ← modules of Even(R) nets (side W). It returns the
// list of unassigned (V_N) modules. The two winner module sets are disjoint
// when the matching is maximum, which the Matcher guarantees.
func assignWinners(h *hypergraph.Hypergraph, sets bipartite.Sets, sides []partition.Side, assigned []bool) (vn []int) {
	for i := range assigned {
		assigned[i] = false
	}
	for _, e := range sets.EvenL {
		for _, v := range h.Pins(e) {
			sides[v] = sideU
			assigned[v] = true
		}
	}
	for _, e := range sets.EvenR {
		for _, v := range h.Pins(e) {
			sides[v] = sideW
			assigned[v] = true
		}
	}
	for v := range assigned {
		if !assigned[v] {
			vn = append(vn, v)
		}
	}
	return vn
}

// completeBulk performs Phase II: both bulk placements of the unassigned
// modules are evaluated and the better one returned. ok is false when both
// options leave a side empty (no proper bipartition exists at this split).
func completeBulk(h *hypergraph.Hypergraph, sets bipartite.Sets, sides []partition.Side) (partition.Metrics, *partition.Bipartition, bool) {
	assigned := make([]bool, h.NumModules())
	vn := assignWinners(h, sets, sides, assigned)

	bestMet := partition.Metrics{RatioCut: inf()}
	var bestSides []partition.Side
	for _, opt := range []partition.Side{sideU, sideW} {
		for _, v := range vn {
			sides[v] = opt
		}
		p := partition.FromSides(sides)
		met := partition.Evaluate(h, p)
		if met.SizeU == 0 || met.SizeW == 0 {
			continue
		}
		if better(met, bestMet) {
			bestMet = met
			bestSides = append(bestSides[:0], sides...)
		}
	}
	if bestSides == nil {
		return partition.Metrics{}, nil, false
	}
	return bestMet, partition.FromSides(bestSides), true
}

// completeRecursive implements the recursive extension: the unassigned
// modules are partitioned by a recursive IG-Match call on their induced
// sub-hypergraph, and the two orientations of that sub-partition are
// evaluated against the winner assignment.
func completeRecursive(h *hypergraph.Hypergraph, sets bipartite.Sets, opts Options) (*partition.Bipartition, partition.Metrics, bool) {
	sides := make([]partition.Side, h.NumModules())
	assigned := make([]bool, h.NumModules())
	vn := assignWinners(h, sets, sides, assigned)
	if len(vn) < 2 {
		return nil, partition.Metrics{}, false
	}
	keep := make([]bool, h.NumModules())
	for _, v := range vn {
		keep[v] = true
	}
	sub, moduleMap, _ := hypergraph.SubHypergraph(h, keep)
	if sub.NumNets() < 2 {
		return nil, partition.Metrics{}, false
	}
	rsp := obs.OrNop(opts.Rec).StartSpan("recursive-completion")
	defer rsp.End()
	subOpts := opts
	subOpts.RecursionDepth--
	subOpts.Trace = nil
	subOpts.Rec = rsp
	subRes, err := Partition(sub, subOpts)
	if err != nil {
		return nil, partition.Metrics{}, false
	}

	bestMet := partition.Metrics{RatioCut: inf()}
	var bestSides []partition.Side
	for flip := 0; flip < 2; flip++ {
		for i, v := range moduleMap {
			s := subRes.Partition.Side(i)
			if flip == 1 {
				s = s.Opposite()
			}
			sides[v] = s
		}
		p := partition.FromSides(sides)
		met := partition.Evaluate(h, p)
		if met.SizeU == 0 || met.SizeW == 0 {
			continue
		}
		if better(met, bestMet) {
			bestMet = met
			bestSides = append(bestSides[:0], sides...)
		}
	}
	if bestSides == nil {
		return nil, partition.Metrics{}, false
	}
	return partition.FromSides(bestSides), bestMet, true
}

// CompleteNetPartition exposes the Phase I + Phase II completion for an
// arbitrary net bipartition (inR[e] placing net e on the R side). It
// returns the better bulk completion along with the matching size of the
// conflict graph — the Theorem 5 bound on the cut.
func CompleteNetPartition(h *hypergraph.Hypergraph, inR []bool) (*partition.Bipartition, partition.Metrics, int, error) {
	if len(inR) != h.NumNets() {
		return nil, partition.Metrics{}, 0, fmt.Errorf("core: inR has %d entries, want %d", len(inR), h.NumNets())
	}
	adj := IGAdjacency(h)
	matcher := bipartite.NewMatcher(adj)
	for e, r := range inR {
		if r {
			matcher.MoveToR(e)
		}
	}
	sets := matcher.Winners()
	sides := make([]partition.Side, h.NumModules())
	met, p, ok := completeBulk(h, sets, sides)
	if !ok {
		return nil, partition.Metrics{}, 0, errors.New("core: completion leaves a side empty")
	}
	return p, met, matcher.MatchingSize(), nil
}
