// Parallel sharded sweep engine. The rank range 1..m−1 is cut into P
// contiguous shards; each worker sweeps its shard with a private
// incremental matcher bootstrapped at the shard boundary by a from-scratch
// Hopcroft–Karp build (bipartite.NewMatcherAt). Because the Even/Odd/Core
// classification is canonical over maximum matchings (Dulmage–Mendelsohn),
// every shard sees exactly the per-split state the serial sweep would, and
// the lowest-rank-wins reduction in sweep() makes the combined result
// bit-identical to the serial engine for any P.
//
// Cost: each bootstrap is O(e·√m), so the extra work over serial is
// O(P·e·√m) against the O(m·(m+e)) sweep (Theorem 6) — negligible for the
// small P of real machines, and the shards are embarrassingly parallel.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"igpart/internal/fault"
	"igpart/internal/hypergraph"
	"igpart/internal/obs"
	"igpart/internal/par"
)

// shardCount resolves the Parallelism option against the number of splits:
// 0 means GOMAXPROCS, and a shard never shrinks below one split.
func shardCount(parallelism, nSplits int) int {
	return par.Workers(parallelism, nSplits)
}

// runShards executes the sweep over the rank range [loRank, hiRank] in p
// contiguous shards and returns the per-shard winners in ascending rank
// order. Unconstrained sweeps pass the full range 1..m−1; a balance
// budget narrows it (see balanceRankWindow). p == 1 stays on the calling
// goroutine — the serial engine, with zero synchronization overhead.
//
// sw is the sweep stage span; each shard records under its own child
// span. Child spans are opened before the workers launch so the stage
// tree lists shards in ascending rank order regardless of scheduling.
func runShards(ctx context.Context, h *hypergraph.Hypergraph, adj [][]int, order []int, loRank, hiRank, p int, trace []SplitRecord, sw obs.Recorder, inj *fault.Injector, cons *constraints) []shardBest {
	if p <= 1 {
		return []shardBest{safeSweepShard(ctx, h, adj, order, loRank, hiRank+1, trace, shardSpan(sw, loRank, hiRank+1), inj, cons)}
	}
	shards := make([]shardBest, p)
	spans := make([]obs.Recorder, p)
	bounds := par.Bounds(p, hiRank-loRank+1) // rank ranges, shifted below
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		lo := loRank + bounds[i][0]
		hi := loRank + bounds[i][1]
		spans[i] = shardSpan(sw, lo, hi)
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			shards[i] = safeSweepShard(ctx, h, adj, order, lo, hi, trace, spans[i], inj, cons)
		}(i, lo, hi)
	}
	wg.Wait()
	return shards
}

// slowShardDelay is the straggler latency the sweep.slow-shard fault
// injection point adds at shard start.
const slowShardDelay = 20 * time.Millisecond

// safeSweepShard runs one shard behind a recover barrier. The barrier
// is load-bearing: shards run on their own goroutines, where an
// unrecovered panic kills the whole process regardless of any recovery
// the job engine does around the solve — so a panicking shard must be
// converted to a structured shard error right here. The panic value and
// stack are captured in a fault.PanicError and counted in the run's
// sweep.shard_panics metric; the sweep reduction turns it into a failed
// run, and its sibling shards finish normally.
//
// The fault.SweepSlowShard injection point delays the shard's start to
// exercise straggler skew deterministically; it never changes results.
func safeSweepShard(ctx context.Context, h *hypergraph.Hypergraph, adj [][]int, order []int, lo, hi int, trace []SplitRecord, sp obs.Recorder, inj *fault.Injector, cons *constraints) (sb shardBest) {
	defer func() {
		if r := recover(); r != nil {
			sb = shardBest{err: fault.Recovered(r)}
			sp.Metrics().Counter("sweep.shard_panics").Add(1)
		}
	}()
	if inj.Active(fault.SweepSlowShard) {
		time.Sleep(slowShardDelay)
	}
	return sweepShard(ctx, h, adj, order, lo, hi, trace, sp, cons)
}

// shardSpan opens the stage span for one shard's rank range. The label
// is only built when a real recorder listens.
func shardSpan(sw obs.Recorder, lo, hi int) obs.Recorder {
	if !sw.Enabled() {
		return obs.Nop
	}
	return sw.StartSpan(fmt.Sprintf("shard[%d:%d)", lo, hi))
}
