// Parallel sharded sweep engine. The rank range 1..m−1 is cut into P
// contiguous shards; each worker sweeps its shard with a private
// incremental matcher bootstrapped at the shard boundary by a from-scratch
// Hopcroft–Karp build (bipartite.NewMatcherAt). Because the Even/Odd/Core
// classification is canonical over maximum matchings (Dulmage–Mendelsohn),
// every shard sees exactly the per-split state the serial sweep would, and
// the lowest-rank-wins reduction in sweep() makes the combined result
// bit-identical to the serial engine for any P.
//
// Cost: each bootstrap is O(e·√m), so the extra work over serial is
// O(P·e·√m) against the O(m·(m+e)) sweep (Theorem 6) — negligible for the
// small P of real machines, and the shards are embarrassingly parallel.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"igpart/internal/hypergraph"
	"igpart/internal/obs"
)

// shardCount resolves the Parallelism option against the number of splits:
// 0 means GOMAXPROCS, and a shard never shrinks below one split.
func shardCount(parallelism, nSplits int) int {
	p := parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > nSplits {
		p = nSplits
	}
	if p < 1 {
		p = 1
	}
	return p
}

// runShards executes the sweep over p contiguous shards and returns the
// per-shard winners in ascending rank order. p == 1 stays on the calling
// goroutine — the serial engine, with zero synchronization overhead.
//
// sw is the sweep stage span; each shard records under its own child
// span. Child spans are opened before the workers launch so the stage
// tree lists shards in ascending rank order regardless of scheduling.
func runShards(ctx context.Context, h *hypergraph.Hypergraph, adj [][]int, order []int, nSplits, p int, trace []SplitRecord, sw obs.Recorder) []shardBest {
	if p <= 1 {
		return []shardBest{sweepShard(ctx, h, adj, order, 1, nSplits+1, trace, shardSpan(sw, 1, nSplits+1))}
	}
	shards := make([]shardBest, p)
	spans := make([]obs.Recorder, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		lo := 1 + i*nSplits/p
		hi := 1 + (i+1)*nSplits/p
		spans[i] = shardSpan(sw, lo, hi)
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			shards[i] = sweepShard(ctx, h, adj, order, lo, hi, trace, spans[i])
		}(i, lo, hi)
	}
	wg.Wait()
	return shards
}

// shardSpan opens the stage span for one shard's rank range. The label
// is only built when a real recorder listens.
func shardSpan(sw obs.Recorder, lo, hi int) obs.Recorder {
	if !sw.Enabled() {
		return obs.Nop
	}
	return sw.StartSpan(fmt.Sprintf("shard[%d:%d)", lo, hi))
}
