package core

import (
	"strings"
	"testing"

	"igpart/internal/fault"
	"igpart/internal/obs"
)

// panicRecorder is an obs.Recorder whose Count panics inside any span
// whose name marks a sweep shard. Because sweepShard records counters
// on its shard span from inside the worker goroutine, this drives a
// genuine mid-shard panic through the production code path — the
// closest a test can get to "the matcher blew up on this shard".
type panicRecorder struct {
	name string
	reg  *obs.Registry
}

func (p *panicRecorder) StartSpan(name string) obs.Recorder {
	return &panicRecorder{name: name, reg: p.reg}
}

func (p *panicRecorder) Count(name string, delta int64) {
	if strings.HasPrefix(p.name, "shard[") {
		panic("synthetic shard failure in " + p.name)
	}
}

func (p *panicRecorder) End()                   {}
func (p *panicRecorder) Metrics() *obs.Registry { return p.reg }
func (p *panicRecorder) Enabled() bool          { return true }

// TestSweepShardPanicIsolated asserts the shard recover barrier: a panic
// raised inside a shard — serial or on a worker goroutine — must not
// crash the process, must surface as a structured PanicError with a
// captured stack, and must bump the sweep.shard_panics counter.
func TestSweepShardPanicIsolated(t *testing.T) {
	h := randomCircuit(t, 1)
	for _, p := range []int{1, 4} {
		reg := new(obs.Registry)
		_, err := Partition(h, Options{Parallelism: p, Rec: &panicRecorder{reg: reg}})
		if err == nil {
			t.Fatalf("P=%d: shard panic did not fail the run", p)
		}
		if !strings.Contains(err.Error(), "sweep shard panicked") {
			t.Fatalf("P=%d: err = %v, want sweep-shard-panicked wrapper", p, err)
		}
		pe, ok := fault.AsPanic(err)
		if !ok {
			t.Fatalf("P=%d: err = %v, want wrapped fault.PanicError", p, err)
		}
		if !strings.Contains(pe.Error(), "synthetic shard failure") {
			t.Fatalf("P=%d: panic value lost: %v", p, pe)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("P=%d: panic stack not captured", p)
		}
		if got := reg.Snapshot().Counters["sweep.shard_panics"]; got < 1 {
			t.Fatalf("P=%d: sweep.shard_panics = %d, want ≥ 1", p, got)
		}
	}
}

// TestSlowShardInjectionParity asserts that the sweep.slow-shard point
// only adds latency: results under injection are bit-identical to a
// clean run at the same parallelism.
func TestSlowShardInjectionParity(t *testing.T) {
	h := randomCircuit(t, 2)
	clean, err := Partition(h, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(7, nil, fault.Rule{Point: fault.SweepSlowShard})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Partition(h, Options{Parallelism: 4, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Fires(fault.SweepSlowShard) < 1 {
		t.Fatal("slow-shard point never fired")
	}
	if clean.BestRank != slow.BestRank || clean.Metrics != slow.Metrics {
		t.Fatalf("slow-shard injection changed the result: %+v vs %+v", clean.Metrics, slow.Metrics)
	}
	for v := 0; v < h.NumModules(); v++ {
		if clean.Partition.Side(v) != slow.Partition.Side(v) {
			t.Fatalf("module %d on different sides under slow-shard injection", v)
		}
	}
}

// TestEigenFaultThreadedThroughCore asserts Options.Fault reaches the
// eigensolver: with eigen.noconverge armed once, the run still succeeds
// (the fallback chain absorbs it) and the point records its fire.
func TestEigenFaultThreadedThroughCore(t *testing.T) {
	h := randomCircuit(t, 0)
	inj, err := fault.New(3, nil, fault.Rule{Point: fault.EigenNoConverge, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Partition(h, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(h, Options{Parallelism: 1, Fault: inj})
	if err != nil {
		t.Fatalf("Partition with one injected non-convergence: %v", err)
	}
	if inj.Fires(fault.EigenNoConverge) != 1 {
		t.Fatalf("eigen.noconverge fired %d times, want 1", inj.Fires(fault.EigenNoConverge))
	}
	// The retry rung solves the same eigenproblem, so the sweep sees the
	// same ordering up to eigenvector sign/degeneracy; the ratio cut of
	// the winning split must match the clean run on this instance.
	if res.Metrics.RatioCut != clean.Metrics.RatioCut {
		t.Fatalf("ratio cut diverged under retry rung: %v vs %v",
			res.Metrics.RatioCut, clean.Metrics.RatioCut)
	}
}
