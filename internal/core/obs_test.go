package core

import (
	"testing"

	"igpart/internal/obs"
)

// TestObsCountersMatchGroundTruth cross-checks the observability layer
// against quantities the sweep itself guarantees: the traced span tree
// and the metrics registry must agree exactly with the SplitRecord
// trace and the returned result, for the serial engine and for every
// sharded configuration. Tracing is a read-only window — if these
// counters drift from ground truth the window is lying.
func TestObsCountersMatchGroundTruth(t *testing.T) {
	h := randomCircuit(t, 3)
	m := h.NumNets()
	for _, p := range []int{0, 1, 2, 4, 8} {
		tr := obs.NewTrace("igmatch")
		var trace []SplitRecord
		res, err := Partition(h, Options{Parallelism: p, Rec: tr, Trace: &trace})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		root := tr.Finish()

		sweep := root.Find("sweep")
		if sweep == nil {
			t.Fatalf("p=%d: no sweep span in trace:\n%s", p, obs.FormatTree(root))
		}
		// Every rank 1..m−1 is evaluated exactly once across all shards.
		if got := sweep.Sum("splits"); got != int64(m-1) {
			t.Errorf("p=%d: span splits = %d, want %d", p, got, m-1)
		}
		snap := tr.Metrics().Snapshot()
		if got := snap.Counters["sweep.splits"]; got != int64(m-1) {
			t.Errorf("p=%d: registry sweep.splits = %d, want %d", p, got, m-1)
		}
		if len(trace) != m-1 {
			t.Fatalf("p=%d: %d split records, want %d", p, len(trace), m-1)
		}
		// The winning split's recorded cut is the cut the result reports.
		best := trace[res.BestRank-1]
		if best.Rank != res.BestRank {
			t.Errorf("p=%d: trace[%d].Rank = %d", p, res.BestRank-1, best.Rank)
		}
		if best.CutNets != res.Metrics.CutNets {
			t.Errorf("p=%d: cut at best rank %d vs reported %d",
				p, best.CutNets, res.Metrics.CutNets)
		}
		// Phase II evaluated at least the winning split, and augmentations
		// accumulated across shards appear in both sinks identically.
		if got := sweep.Sum("phase2-evals"); got < 1 {
			t.Errorf("p=%d: phase2-evals = %d, want ≥ 1", p, got)
		}
		if a, b := sweep.Sum("augmentations"), snap.Counters["sweep.augmentations"]; a != b {
			t.Errorf("p=%d: span augmentations %d != registry %d", p, a, b)
		}
		// Shard spans match the reduction's reported shard count.
		shards := 0
		for i := range sweep.Children {
			if sweep.Children[i].Name != "" {
				shards++
			}
		}
		if got := sweep.Counters["shards"]; got != int64(shards) {
			t.Errorf("p=%d: shards counter %d vs %d shard spans", p, got, shards)
		}
		if p == 1 && shards != 1 {
			t.Errorf("serial sweep produced %d shard spans", shards)
		}
		// Gauges mirror the result.
		if got := snap.Gauges["sweep.best_rank"]; got != float64(res.BestRank) {
			t.Errorf("p=%d: best_rank gauge %g vs %d", p, got, res.BestRank)
		}
	}
}

// TestObsTracingChangesNothing asserts the tracing-on result is
// bit-identical to the tracing-off result: same partition, same metrics,
// same winning rank.
func TestObsTracingChangesNothing(t *testing.T) {
	h := randomCircuit(t, 5)
	plain, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("igmatch")
	traced, err := Partition(h, Options{Rec: tr})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != traced.Metrics || plain.BestRank != traced.BestRank {
		t.Errorf("tracing changed the result: %+v rank %d vs %+v rank %d",
			plain.Metrics, plain.BestRank, traced.Metrics, traced.BestRank)
	}
	for v := 0; v < h.NumModules(); v++ {
		if plain.Partition.Side(v) != traced.Partition.Side(v) {
			t.Fatalf("assignment differs at module %d", v)
		}
	}
}
