package core

import (
	"errors"
	"testing"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

// TestBalancedSweepRespectsWindow runs the constrained sweep over a set
// of windows, from loose to single-size, and requires every completion
// to land inside its window — at every parallelism, bit-identically.
func TestBalancedSweepRespectsWindow(t *testing.T) {
	h := randomCircuit(t, 2)
	n := h.NumModules()
	windows := []Balance{
		{MinU: n/2 - 5, MaxU: n/2 + 5},
		{MinU: n / 4, MaxU: 3 * n / 4},
		{MinU: n / 2, MaxU: n / 2}, // exact bisection
		{MinU: 1, MaxU: n - 1},     // trivial window
	}
	for _, w := range windows {
		w := w
		serial, err := Partition(h, Options{Balance: &w, Parallelism: 1})
		if err != nil {
			t.Fatalf("window [%d,%d]: %v", w.MinU, w.MaxU, err)
		}
		if su := serial.Metrics.SizeU; su < w.MinU || su > w.MaxU {
			t.Fatalf("window [%d,%d]: SizeU=%d outside", w.MinU, w.MaxU, su)
		}
		if serial.Metrics.SizeW != n-serial.Metrics.SizeU {
			t.Fatalf("sides don't cover the netlist: %+v", serial.Metrics)
		}
		par, err := Partition(h, Options{Balance: &w, Parallelism: 4})
		if err != nil {
			t.Fatalf("window [%d,%d] parallel: %v", w.MinU, w.MaxU, err)
		}
		for v := 0; v < n; v++ {
			if serial.Partition.Side(v) != par.Partition.Side(v) {
				t.Fatalf("window [%d,%d]: parallelism changed module %d", w.MinU, w.MaxU, v)
			}
		}
	}
}

// TestFixedSidesRespected pins modules to both sides and requires every
// pin to survive the König completion, with and without a window.
func TestFixedSidesRespected(t *testing.T) {
	h := randomCircuit(t, 3)
	n := h.NumModules()
	fixed := make([]int8, n)
	for v := range fixed {
		fixed[v] = -1
	}
	fixed[0], fixed[1], fixed[2] = 0, 0, 1
	fixed[n-1], fixed[n-2] = 1, 0

	check := func(opts Options) {
		t.Helper()
		res, err := Partition(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		for v, s := range fixed {
			if s < 0 {
				continue
			}
			want := partition.U
			if s == 1 {
				want = partition.W
			}
			if got := res.Partition.Side(v); got != want {
				t.Fatalf("module %d pinned to %v, got %v", v, want, got)
			}
		}
		if opts.Balance != nil {
			if su := res.Metrics.SizeU; su < opts.Balance.MinU || su > opts.Balance.MaxU {
				t.Fatalf("SizeU=%d outside window [%d,%d]", su, opts.Balance.MinU, opts.Balance.MaxU)
			}
		}
	}
	check(Options{FixedSides: fixed})
	check(Options{FixedSides: fixed, Balance: &Balance{MinU: n/2 - 3, MaxU: n/2 + 3}})
	check(Options{FixedSides: fixed, Balance: &Balance{MinU: n / 3, MaxU: n / 2}, Parallelism: 2})
}

// TestCandidatesConstrained exercises the scalable candidate sweep under
// the same constraints.
func TestCandidatesConstrained(t *testing.T) {
	h := randomCircuit(t, 4)
	n := h.NumModules()
	fixed := make([]int8, n)
	for v := range fixed {
		fixed[v] = -1
	}
	fixed[5], fixed[7] = 0, 1
	w := Balance{MinU: n/2 - 4, MaxU: n/2 + 4}
	res, err := PartitionCandidates(h, 12, Options{Balance: &w, FixedSides: fixed})
	if err != nil {
		t.Fatal(err)
	}
	if su := res.Metrics.SizeU; su < w.MinU || su > w.MaxU {
		t.Fatalf("SizeU=%d outside window [%d,%d]", su, w.MinU, w.MaxU)
	}
	if res.Partition.Side(5) != partition.U || res.Partition.Side(7) != partition.W {
		t.Fatalf("pins ignored: side(5)=%v side(7)=%v", res.Partition.Side(5), res.Partition.Side(7))
	}
}

// TestConstraintValidation covers the rejection paths of constrained
// options: malformed pin vectors, impossible windows, and windows the
// pins overflow.
func TestConstraintValidation(t *testing.T) {
	h := randomCircuit(t, 5)
	n := h.NumModules()
	short := make([]int8, n-1)
	badVal := make([]int8, n)
	for i := range badVal {
		badVal[i] = -1
	}
	badVal[0] = 3
	manyU := make([]int8, n)
	for i := range manyU {
		manyU[i] = -1
	}
	for i := 0; i < 6; i++ {
		manyU[i] = 0
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"short pin vector", Options{FixedSides: short}},
		{"pin value out of range", Options{FixedSides: badVal}},
		{"inverted window", Options{Balance: &Balance{MinU: 10, MaxU: 5}}},
		{"window excludes pins", Options{FixedSides: manyU, Balance: &Balance{MinU: 1, MaxU: 3}}},
	}
	for _, tc := range cases {
		if _, err := Partition(h, tc.opts); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
		if _, err := PartitionCandidates(h, 8, tc.opts); err == nil {
			t.Errorf("%s (candidates): no error", tc.name)
		}
	}
}

// TestNoFeasibleCompletion pins the typed failure on a window no swept
// split of the dense 3-pin ring can complete ([6,6] over 8 modules —
// every completion's U side overshoots or undershoots the single allowed
// size), and contrasts it with a tight window the balanced V_N
// completion does satisfy ([1,1]).
func TestNoFeasibleCompletion(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.SetNumModules(8)
	for v := 0; v < 8; v++ {
		b.AddNet(v, (v+1)%8, (v+2)%8)
	}
	h := b.Build()
	_, err := Partition(h, Options{Balance: &Balance{MinU: 6, MaxU: 6}})
	if !errors.Is(err, ErrNoFeasibleCompletion) {
		t.Fatalf("err = %v, want ErrNoFeasibleCompletion", err)
	}
	_, err = PartitionCandidates(h, 4, Options{Balance: &Balance{MinU: 6, MaxU: 6}})
	if !errors.Is(err, ErrNoFeasibleCompletion) {
		t.Fatalf("candidates err = %v, want ErrNoFeasibleCompletion", err)
	}
	// The [1,1] window IS reachable: the balanced completion can split
	// the free V_N nets to hit an exact size the plain sweep never would.
	res, err := Partition(h, Options{Balance: &Balance{MinU: 1, MaxU: 1}})
	if err != nil {
		t.Fatalf("[1,1] window: %v", err)
	}
	if res.Metrics.SizeU != 1 {
		t.Fatalf("[1,1] window: SizeU=%d", res.Metrics.SizeU)
	}
}

// TestNilConstraintsTakeLegacyPath asserts the structural parity
// guarantee: with no Balance and no FixedSides, newConstraints resolves
// to nil and the sweep output is bit-identical to the pre-constraint
// code — including when a FixedSides vector is present but all-free,
// which does engage the constrained completer.
func TestNilConstraintsTakeLegacyPath(t *testing.T) {
	h := randomCircuit(t, 6)
	n := h.NumModules()
	cons, err := newConstraints(Options{}, n)
	if err != nil || cons != nil {
		t.Fatalf("newConstraints(zero) = %v, %v; want nil, nil", cons, err)
	}
	allFree := make([]int8, n)
	for i := range allFree {
		allFree[i] = -1
	}
	cons, err = newConstraints(Options{FixedSides: allFree}, n)
	if err != nil || cons == nil {
		t.Fatalf("newConstraints(all free) = %v, %v; want non-nil, nil", cons, err)
	}

	base, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.BestRank != again.BestRank || base.Metrics != again.Metrics {
		t.Fatalf("unconstrained run not deterministic: %+v vs %+v", base.Metrics, again.Metrics)
	}
}
