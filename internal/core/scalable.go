// Scalable candidate-split engine. The full sweep evaluates every split
// of the net ordering — O(m·(m+e)) by Theorem 6 — which is the right
// trade at benchmark sizes but infeasible at 10⁵–10⁶ nets, where the
// eigensolve should dominate, not the sweep. PartitionCandidates keeps
// the spectral pipeline intact and completes only a bounded set of
// evenly spaced candidate splits, each bootstrapped with its own
// from-scratch Hopcroft–Karp matching (bipartite.NewMatcherAt). Because
// the Even/Odd/Core classification is canonical over maximum matchings,
// every candidate sees exactly the per-split state the serial sweep
// would at that rank, so each completion carries the Theorem 5 cut
// bound; only the splits in between go unexplored.
package core

import (
	"errors"
	"fmt"

	"igpart/internal/bipartite"
	"igpart/internal/fault"
	"igpart/internal/hypergraph"
	"igpart/internal/obs"
	"igpart/internal/par"
	"igpart/internal/partition"
)

// DefaultCandidates is the candidate-split budget PartitionCandidates
// uses when the caller passes 0. The Fiedler sweep profile is smooth
// near its minimum on real netlists, so a few dozen probes of the
// ordering recover the full sweep's ratio cut to within a few percent.
const DefaultCandidates = 32

// PartitionCandidates runs the scalable IG-Match variant: the spectral
// net ordering is computed exactly as in Partition, then candidates
// evenly spaced splits of the ordering (0 = DefaultCandidates) are
// completed concurrently under opts.Parallelism and the best completion
// wins. The reduction admits a later candidate only on strict metric
// improvement, so ties resolve to the lowest rank and the result is
// bit-identical for every parallelism. opts.Trace is ignored — per-split
// traces are a full-sweep feature.
func PartitionCandidates(h *hypergraph.Hypergraph, candidates int, opts Options) (Result, error) {
	m := h.NumNets()
	if m < 2 {
		return Result{}, errors.New("core: IG-Match needs at least 2 nets")
	}
	if h.NumModules() < 2 {
		return Result{}, errors.New("core: IG-Match needs at least 2 modules")
	}
	order, lambda2, err := fiedlerOrder(h, opts)
	if err != nil {
		return Result{}, err
	}
	res, err := candidateSweep(h, order, candidates, opts)
	if err != nil {
		return Result{}, err
	}
	res.Lambda2 = lambda2
	return res, nil
}

// PartitionCandidatesWithOrder runs the candidate sweep over an
// externally supplied net ordering, the evenly-spaced counterpart of
// PartitionWithOrder. Warm starts use it as a cheap global probe: a
// dense window around the previous best rank can miss an optimum the
// perturbation relocated, and a few dozen spaced completions over the
// whole ordering catch that at O(candidates·(m+e)) cost.
func PartitionCandidatesWithOrder(h *hypergraph.Hypergraph, order []int, candidates int, opts Options) (Result, error) {
	if len(order) != h.NumNets() {
		return Result{}, fmt.Errorf("core: order has %d entries, want %d", len(order), h.NumNets())
	}
	return candidateSweep(h, order, candidates, opts)
}

// candidateRanks returns the evenly spaced, strictly ascending rank set
// probed over 1..nSplits.
func candidateRanks(candidates, nSplits int) []int {
	if candidates <= 0 {
		candidates = DefaultCandidates
	}
	if candidates > nSplits {
		candidates = nSplits
	}
	ranks := make([]int, 0, candidates)
	prev := 0
	for i := 0; i < candidates; i++ {
		r := (nSplits + 1) / 2
		if candidates > 1 {
			r = 1 + i*(nSplits-1)/(candidates-1)
		}
		if r != prev {
			ranks = append(ranks, r)
			prev = r
		}
	}
	return ranks
}

// candidateRanksWindow spreads the candidate budget over the rank window
// [lo, hi] instead of the whole ordering; the full-range call reduces to
// candidateRanks exactly, keeping the unconstrained engine bit-identical.
func candidateRanksWindow(candidates, lo, hi int) []int {
	ranks := candidateRanks(candidates, hi-lo+1)
	if lo != 1 {
		for i := range ranks {
			ranks[i] += lo - 1
		}
	}
	return ranks
}

// candidateSweep completes the candidate splits of the given ordering
// and reduces to the best, mirroring sweep()'s reduction semantics. A
// balance budget concentrates the candidates on the rank window that can
// plausibly reach it (see balanceRankWindow).
func candidateSweep(h *hypergraph.Hypergraph, order []int, candidates int, opts Options) (Result, error) {
	m := h.NumNets()
	cons, err := newConstraints(opts, h.NumModules())
	if err != nil {
		return Result{}, err
	}
	rec := obs.OrNop(opts.Rec)
	sp := rec.StartSpan("conflict-adjacency")
	adj := IGAdjacency(h)
	sp.End()

	loRank, hiRank := 1, m-1
	if cons != nil {
		loRank, hiRank = balanceRankWindow(cons.bal, h.NumModules(), m-1)
	}
	ranks := candidateRanksWindow(candidates, loRank, hiRank)
	sw := rec.StartSpan("candidate-sweep")
	p := par.Workers(opts.Parallelism, len(ranks))
	bounds := par.Bounds(p, len(ranks))
	spans := make([]obs.Recorder, p)
	for i := 0; i < p; i++ {
		spans[i] = shardSpan(sw, ranks[bounds[i][0]], ranks[bounds[i][1]-1]+1)
	}
	results := make([]shardBest, p)
	par.Run(p, func(i int) {
		results[i] = safeCandidateShard(h, adj, order, ranks[bounds[i][0]:bounds[i][1]], opts, spans[i], cons)
	})

	best := Result{NetOrder: order}
	bestCost := partition.Metrics{RatioCut: inf()}
	var bestSets bipartite.Sets
	haveBest := false
	for _, sb := range results {
		if sb.err != nil {
			sw.End()
			if _, ok := fault.AsPanic(sb.err); ok {
				return Result{}, fmt.Errorf("core: candidate shard panicked: %w", sb.err)
			}
			return Result{}, fmt.Errorf("core: candidate sweep cancelled: %w", sb.err)
		}
		if sb.have && better(sb.met, bestCost) {
			bestCost = sb.met
			best.Partition = sb.part
			best.Metrics = sb.met
			best.BestRank = sb.rank
			best.BestMatching = sb.matching
			bestSets = sb.sets
			haveBest = true
		}
	}
	sw.Count("candidates", int64(len(ranks)))
	sw.Count("shards", int64(p))
	sw.End()
	if !haveBest {
		if cons != nil {
			return Result{}, ErrNoFeasibleCompletion
		}
		return Result{}, errors.New("core: no proper completion found (every candidate split left one side empty)")
	}
	reg := rec.Metrics()
	reg.Counter("sweep.candidates").Add(int64(len(ranks)))
	reg.Gauge("sweep.best_rank").Set(float64(best.BestRank))
	reg.Gauge("sweep.best_ratio").Set(best.Metrics.RatioCut)

	// The recursive extension is pin- and balance-oblivious; it only
	// augments unconstrained runs.
	if opts.RecursionDepth > 0 && cons == nil {
		if p2, met2, ok := completeRecursive(h, bestSets, opts); ok && better(met2, best.Metrics) {
			best.Partition = p2
			best.Metrics = met2
			best.Recursed = true
		}
	}
	return best, nil
}

// safeCandidateShard evaluates one worker's share of the candidate ranks
// behind the same recover barrier the sweep shards use: the worker runs
// on its own goroutine, so a panic must become a structured shard error
// here or it kills the process.
func safeCandidateShard(h *hypergraph.Hypergraph, adj [][]int, order []int, ranks []int, opts Options, sp obs.Recorder, cons *constraints) (sb shardBest) {
	defer func() {
		if r := recover(); r != nil {
			sb = shardBest{err: fault.Recovered(r)}
			sp.Metrics().Counter("sweep.shard_panics").Add(1)
		}
	}()
	return candidateShard(h, adj, order, ranks, opts, sp, cons)
}

// candidateShard completes each rank in ranks (ascending) and keeps the
// shard-local best. Each candidate gets its own Hopcroft–Karp bootstrap
// at its boundary; the inR prefix marches forward incrementally, so the
// whole shard fills it O(m) total.
func candidateShard(h *hypergraph.Hypergraph, adj [][]int, order []int, ranks []int, opts Options, sp obs.Recorder, cons *constraints) shardBest {
	comp := newCompleter(h, cons)
	inR := make([]bool, len(adj))
	idx := 0

	var sb shardBest
	bestCost := partition.Metrics{RatioCut: inf()}
	var sets bipartite.Sets
	var winners, infeasible, augmentations int64
	for _, rank := range ranks {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				sb.err = err
				break
			}
		}
		for ; idx < rank-1; idx++ {
			inR[order[idx]] = true
		}
		matcher := bipartite.NewMatcherAt(adj, inR)
		matcher.MoveToR(order[rank-1])
		matcher.WinnersInto(&sets)
		winners += int64(len(sets.EvenL) + len(sets.EvenR))
		augmentations += int64(matcher.Augmentations())
		var met partition.Metrics
		var vnSide partition.Side
		var ok bool
		if comp.cons == nil {
			met, vnSide, ok = comp.evaluate(sets)
		} else {
			met, ok = comp.evaluateConstrained(sets)
		}
		if !ok {
			infeasible++
			continue
		}
		if better(met, bestCost) {
			bestCost = met
			sb.have = true
			sb.met = met
			sb.part = comp.materializeBest(vnSide)
			sb.rank = rank
			sb.matching = matcher.MatchingSize()
			sb.sets = copySets(sets)
		}
	}
	sp.Count("splits", int64(len(ranks)))
	sp.Count("phase1-winners", winners)
	sp.Count("infeasible", infeasible)
	reg := sp.Metrics()
	reg.Counter("sweep.splits").Add(int64(len(ranks)))
	reg.Counter("sweep.augmentations").Add(augmentations)
	reg.Counter("sweep.phase1_winners").Add(winners)
	sp.End()
	return sb
}
