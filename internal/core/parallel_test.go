package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"igpart/internal/bipartite"
	"igpart/internal/hypergraph"
	"igpart/internal/netgen"
)

// randomCircuit draws a small randomized netlist from the synthetic
// generator (the hierarchical structure the sweep is designed for).
func randomCircuit(t testing.TB, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	h, err := netgen.Generate(netgen.Config{
		Name:    fmt.Sprintf("rand%d", seed),
		Modules: 120 + int(seed%5)*30,
		Nets:    140 + int(seed%7)*25,
		Seed:    900 + seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// sweepTwice runs PartitionWithOrder at the two parallelism levels over the
// eigen ordering of h and returns both results plus their traces.
func sweepTwice(t testing.TB, h *hypergraph.Hypergraph, p1, p2 int) (a, b Result, ta, tb []SplitRecord) {
	t.Helper()
	base, err := Partition(h, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err = PartitionWithOrder(h, base.NetOrder, Options{Parallelism: p1, Trace: &ta})
	if err != nil {
		t.Fatal(err)
	}
	b, err = PartitionWithOrder(h, base.NetOrder, Options{Parallelism: p2, Trace: &tb})
	if err != nil {
		t.Fatal(err)
	}
	return a, b, ta, tb
}

// TestPropertyTheorem5EverySplit asserts the paper's matching bound at
// every sweep split — completed cut ≤ |MM(B)| — for both the serial and the
// parallel engine, on randomized generator netlists.
func TestPropertyTheorem5EverySplit(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		h := randomCircuit(t, seed)
		for _, p := range []int{1, 4} {
			var trace []SplitRecord
			if _, err := Partition(h, Options{Parallelism: p, Trace: &trace}); err != nil {
				t.Fatalf("seed %d P=%d: %v", seed, p, err)
			}
			if len(trace) != h.NumNets()-1 {
				t.Fatalf("seed %d P=%d: %d trace records, want %d",
					seed, p, len(trace), h.NumNets()-1)
			}
			for _, rec := range trace {
				if rec.CutNets < 0 {
					continue // no proper completion at this split
				}
				if rec.CutNets > rec.MatchingSize {
					t.Errorf("seed %d P=%d rank %d: cut %d exceeds matching bound %d",
						seed, p, rec.Rank, rec.CutNets, rec.MatchingSize)
				}
			}
		}
	}
}

// TestPropertyWinnersIndependent asserts that at every split the Phase I
// winner set Even(L) ∪ Even(R) is an independent set in the conflict
// bipartite graph B: no L-winner shares a module with an R-winner. This is
// what lets Phase II assign winner modules to sides without cutting a
// winner net, and it must hold identically for the shard-bootstrapped
// matcher state (NewMatcherAt) that the parallel engine relies on.
func TestPropertyWinnersIndependent(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		h := randomCircuit(t, seed)
		base, err := Partition(h, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		adj := IGAdjacency(h)
		order := base.NetOrder
		m := h.NumNets()
		matcher := bipartite.NewMatcher(adj)
		inEvenL := make([]bool, m)
		var sets bipartite.Sets
		for rank := 1; rank < m; rank++ {
			matcher.MoveToR(order[rank-1])

			// Cross-check: a matcher bootstrapped from scratch at this split
			// must agree with the incrementally maintained one.
			if rank%16 == 0 || rank == m-1 {
				inR := make([]bool, m)
				for i := 0; i < rank; i++ {
					inR[order[i]] = true
				}
				boot := bipartite.NewMatcherAt(adj, inR)
				if boot.MatchingSize() != matcher.MatchingSize() {
					t.Fatalf("seed %d rank %d: bootstrap matching %d != incremental %d",
						seed, rank, boot.MatchingSize(), matcher.MatchingSize())
				}
			}

			matcher.WinnersInto(&sets)
			for _, e := range sets.EvenL {
				inEvenL[e] = true
			}
			for _, f := range sets.EvenR {
				for _, g := range adj[f] {
					if inEvenL[g] {
						t.Fatalf("seed %d rank %d: winners %d (R) and %d (L) share a module",
							seed, rank, f, g)
					}
				}
			}
			for _, e := range sets.EvenL {
				inEvenL[e] = false
			}
		}
	}
}

// TestParallelParity pins bit-identical serial/parallel behavior: identical
// BestRank, Metrics, module assignment, and full trace on 20 seeded random
// netlists plus every benchmark preset (reduced scale).
func TestParallelParity(t *testing.T) {
	check := func(name string, h *hypergraph.Hypergraph) {
		t.Helper()
		a, b, ta, tb := sweepTwice(t, h, 1, 4)
		if a.BestRank != b.BestRank || a.Metrics != b.Metrics || a.BestMatching != b.BestMatching {
			t.Fatalf("%s: serial best (rank %d, %+v, mm %d) != parallel best (rank %d, %+v, mm %d)",
				name, a.BestRank, a.Metrics, a.BestMatching, b.BestRank, b.Metrics, b.BestMatching)
		}
		for v := 0; v < h.NumModules(); v++ {
			if a.Partition.Side(v) != b.Partition.Side(v) {
				t.Fatalf("%s: module %d on different sides", name, v)
			}
		}
		if len(ta) != len(tb) {
			t.Fatalf("%s: trace lengths %d vs %d", name, len(ta), len(tb))
		}
		for i := range ta {
			x, y := ta[i], tb[i]
			same := x.Rank == y.Rank && x.MatchingSize == y.MatchingSize &&
				x.CutNets == y.CutNets &&
				(x.RatioCut == y.RatioCut || (math.IsInf(x.RatioCut, 1) && math.IsInf(y.RatioCut, 1)))
			if !same {
				t.Fatalf("%s: trace diverges at rank %d: %+v vs %+v", name, x.Rank, x, y)
			}
		}
	}

	for seed := int64(0); seed < 20; seed++ {
		check(fmt.Sprintf("rand%d", seed), randomCircuit(t, seed))
	}
	for _, name := range netgen.Names() {
		cfg, _ := netgen.ByName(name)
		h, err := netgen.Generate(cfg.Scaled(0.15))
		if err != nil {
			t.Fatal(err)
		}
		check(name, h)
	}
}

// TestParallelSweepRace drives the parallel path under real concurrency so
// `go test -race` can observe the shard workers: several parallel sweeps of
// the same netlist run simultaneously, sharing nothing but the (read-only)
// hypergraph.
func TestParallelSweepRace(t *testing.T) {
	h := randomCircuit(t, 3)
	base, err := Partition(h, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var trace []SplitRecord
			res, err := PartitionWithOrder(h, base.NetOrder, Options{Parallelism: 4, Trace: &trace})
			if err != nil {
				t.Error(err)
				return
			}
			if res.Metrics != base.Metrics || res.BestRank != base.BestRank {
				t.Errorf("concurrent parallel sweep diverged: %+v vs %+v", res.Metrics, base.Metrics)
			}
		}()
	}
	wg.Wait()
}
