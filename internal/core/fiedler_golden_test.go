package core

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"igpart/internal/netgen"
)

// orderHash condenses a net ordering into one pinnable integer.
func orderHash(order []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, r := range order {
		binary.LittleEndian.PutUint64(buf[:], uint64(r))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestPrim2FiedlerOrderingGolden pins the full-size Prim2 Fiedler
// ordering — the spine every IG algorithm sweeps — and requires it to be
// bit-identical at every matvec worker count. Prim2 (3029 nets) sits
// above ReorthAutoCutoff, so this is the selective-reorth + parallel
// matvec production path: any kernel edit that silently reorders ranks,
// perturbs a single matvec bit, or changes where the ω-monitor fires
// shows up here as a hash mismatch before it can corrupt a benchmark.
func TestPrim2FiedlerOrderingGolden(t *testing.T) {
	cfg, ok := netgen.ByName("Prim2")
	if !ok {
		t.Fatal("Prim2 benchmark preset missing")
	}
	h, err := netgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var base []int
	var baseL2 float64
	for _, p := range []int{1, 2, 4, 8} {
		var opts Options
		opts.Eigen.MatvecWorkers = p
		order, lambda2, err := fiedlerOrder(h, opts)
		if err != nil {
			t.Fatalf("P=%d: fiedlerOrder: %v", p, err)
		}
		if p == 1 {
			base, baseL2 = order, lambda2
			continue
		}
		if lambda2 != baseL2 {
			t.Fatalf("P=%d: λ₂ %x differs from serial %x — parallel matvec broke bit identity", p, lambda2, baseL2)
		}
		for i := range base {
			if order[i] != base[i] {
				t.Fatalf("P=%d: ordering diverges from serial at position %d: net %d vs %d", p, i, order[i], base[i])
			}
		}
	}

	const goldenHash = uint64(0xfa61fdf3e7766e18)
	goldenHead := []int{1898, 1805, 2756, 517, 2398, 2722}
	if got := orderHash(base); got != goldenHash {
		t.Errorf("Prim2 Fiedler ordering drift: hash %#x, golden %#x (head %v)", got, goldenHash, base[:8])
	}
	for i, want := range goldenHead {
		if base[i] != want {
			t.Errorf("Prim2 ordering head drift at %d: net %d, golden %d", i, base[i], want)
		}
	}
}
