// Constrained completion support: balance windows and fixed (pinned)
// modules threaded through the König completion, the substrate the k-way
// engine in internal/multiway builds on.
//
// A Balance window restricts which completions a sweep may return by the
// number of modules on side U; FixedSides pins chosen modules to a side
// before Phase I runs, so a pinned module pre-assigns its nets' sides —
// winner nets color only the free modules around it, and the pin can
// never be overturned by Phase II. Both options default to nil, and the
// nil path executes the paper's engine unchanged: every structure here is
// only consulted behind a nil check, keeping the unconstrained sweep
// bit-identical.
//
// When neither bulk placement of V_N lands inside the window, the
// completer falls back to a balanced completion: V_N is ordered by net
// affinity to the already-colored sides and split at whichever feasible
// prefix length scores better. Note the Theorem 5 matching bound applies
// to the bulk completions only — a balanced completion may cut more than
// |MM(B)| nets, trading the bound for the balance contract.
package core

import (
	"errors"
	"fmt"
	"sort"

	"igpart/internal/bipartite"
	"igpart/internal/partition"
)

// Balance is a closed window [MinU, MaxU] on the number of modules a
// completion may place on side U. The sweep only returns completions
// inside the window; splits that cannot reach it count as infeasible.
type Balance struct {
	MinU int
	MaxU int
}

// ErrNoFeasibleCompletion reports that no swept split admitted a proper
// completion under the active balance window / fixed-side pins. Callers
// with a repair strategy (the k-way driver) detect it with errors.Is.
var ErrNoFeasibleCompletion = errors.New("core: no completion satisfies the balance/fixed constraints")

// constraints is the resolved, validated form of Options.Balance and
// Options.FixedSides that the sweep machinery threads to each shard. A
// nil *constraints means the unconstrained paper engine.
type constraints struct {
	bal    *Balance
	fixed  []uint8 // completer coloring per module: 0 free, 1 side U, 2 side W
	fixedU int
	fixedW int
}

// newConstraints validates and resolves the constraint options. Both nil
// yields a nil constraints — the unconstrained engine.
func newConstraints(opts Options, n int) (*constraints, error) {
	if opts.Balance == nil && opts.FixedSides == nil {
		return nil, nil
	}
	c := &constraints{}
	if opts.FixedSides != nil {
		if len(opts.FixedSides) != n {
			return nil, fmt.Errorf("core: FixedSides has %d entries, want %d", len(opts.FixedSides), n)
		}
		c.fixed = make([]uint8, n)
		for v, s := range opts.FixedSides {
			switch s {
			case -1:
			case 0:
				c.fixed[v] = 1
				c.fixedU++
			case 1:
				c.fixed[v] = 2
				c.fixedW++
			default:
				return nil, fmt.Errorf("core: FixedSides[%d] = %d, want -1, 0, or 1", v, s)
			}
		}
	}
	if opts.Balance != nil {
		b := *opts.Balance // private copy: the window below gets clamped
		if b.MinU < 1 {
			b.MinU = 1
		}
		if b.MaxU > n-1 {
			b.MaxU = n - 1
		}
		if b.MinU > b.MaxU {
			return nil, fmt.Errorf("core: balance window [%d,%d] is empty for %d modules",
				opts.Balance.MinU, opts.Balance.MaxU, n)
		}
		if b.MaxU < c.fixedU || n-b.MinU < c.fixedW {
			return nil, fmt.Errorf("core: balance window [%d,%d] excludes the %d+%d pinned modules",
				b.MinU, b.MaxU, c.fixedU, c.fixedW)
		}
		c.bal = &b
	}
	return c, nil
}

// window returns the active SizeU window, defaulting to the proper-
// bipartition range when no balance budget is set.
func (c *constraints) window(n int) (lo, hi int) {
	if c.bal != nil {
		return c.bal.MinU, c.bal.MaxU
	}
	return 1, n - 1
}

// balanceRankWindow maps a module-count balance window onto sweep ranks.
// Rank r moves the first r nets of the ordering to the R side, and on
// real orderings the completed U side shrinks roughly in proportion — but
// the completion, not the rank, fixes the module sizes, so this mapping
// is heuristic pruning only: it keeps a margin of a quarter window plus
// 1/16 of the ordering on both ends, and the per-completion balance
// filter remains the ground truth. Degenerate inputs fall back to the
// full range.
func balanceRankWindow(bal *Balance, n, nSplits int) (lo, hi int) {
	if bal == nil || n <= 0 {
		return 1, nSplits
	}
	lo = nSplits * (n - bal.MaxU) / n
	hi = (nSplits*(n-bal.MinU) + n - 1) / n
	margin := (hi-lo)/4 + nSplits/16 + 1
	lo -= margin
	hi += margin
	if lo < 1 {
		lo = 1
	}
	if hi > nSplits {
		hi = nSplits
	}
	if lo > hi {
		return 1, nSplits
	}
	return lo, hi
}

// evaluateConstrained is the constrained counterpart of evaluate: it
// colors the winners around the pinned modules, scores both bulk V_N
// placements against the balance window, and when neither lands inside it
// falls back to the affinity-ordered balanced completion — V_N sorted by
// net affinity to the colored sides, split at the feasible prefix length
// that scores better. The chosen completion is remembered in balX/balSide
// for materializeConstrained. ok is false when the window is unreachable
// at this split.
func (c *completer) evaluateConstrained(sets bipartite.Sets) (partition.Metrics, bool) {
	wU, wW := c.color(sets) // free winner modules only; pins stay put
	nU := c.cons.fixedU + wU
	nW := c.cons.fixedW + wW
	n := c.h.NumModules()
	nN := n - nU - nW
	lo, hi := c.cons.window(n)

	// Collect V_N and reset its affinity accumulators, then one pass over
	// the pins scores both bulk options and the per-module affinities the
	// balanced fallback sorts by.
	c.vn = c.vn[:0]
	for v := 0; v < n; v++ {
		if c.assigned[v] == 0 {
			c.vn = append(c.vn, v)
			c.affU[v] = 0
			c.affW[v] = 0
		}
	}
	cutToU, cutToW := 0, 0 // cut counts for V_N→U and V_N→W
	for e := 0; e < c.h.NumNets(); e++ {
		pins := c.h.Pins(e)
		if len(pins) < 2 {
			continue
		}
		var hasU, hasW, hasN bool
		for _, v := range pins {
			switch c.assigned[v] {
			case 1:
				hasU = true
			case 2:
				hasW = true
			default:
				hasN = true
			}
		}
		if hasW && (hasU || hasN) {
			cutToU++
		}
		if hasU && (hasW || hasN) {
			cutToW++
		}
		if hasN && (hasU || hasW) {
			for _, v := range pins {
				if c.assigned[v] != 0 {
					continue
				}
				if hasU {
					c.affU[v]++
				}
				if hasW {
					c.affW[v]++
				}
			}
		}
	}

	metU := partition.Metrics{ // V_N joins U
		CutNets: cutToU, SizeU: nU + nN, SizeW: nW,
		RatioCut: partition.RatioCutFrom(cutToU, nU+nN, nW),
	}
	metW := partition.Metrics{ // V_N joins W
		CutNets: cutToW, SizeU: nU, SizeW: nW + nN,
		RatioCut: partition.RatioCutFrom(cutToW, nU, nW+nN),
	}
	okU := metU.SizeW > 0 && lo <= metU.SizeU && metU.SizeU <= hi
	okW := metW.SizeU > 0 && lo <= metW.SizeU && metW.SizeU <= hi
	c.balX = -1
	switch {
	case okU && (!okW || !better(metW, metU)): // ties go to the U option
		c.balSide = sideU
		return metU, true
	case okW:
		c.balSide = sideW
		return metW, true
	}

	// Balanced completion: the feasible prefix lengths x (V_N modules sent
	// to U) that land SizeU = nU+x inside the window. Both bulk extremes
	// were just rejected, so any feasible x is a genuine split of V_N.
	xlo, xhi := lo-nU, hi-nU
	if xlo < 0 {
		xlo = 0
	}
	if xhi > nN {
		xhi = nN
	}
	if xlo > xhi || nN == 0 {
		return partition.Metrics{}, false
	}
	c.sortVNByAffinity()
	x := xlo
	met := partition.Metrics{CutNets: c.vnCut(xlo), SizeU: nU + xlo, SizeW: nW + nN - xlo}
	met.RatioCut = partition.RatioCutFrom(met.CutNets, met.SizeU, met.SizeW)
	if xhi != xlo {
		alt := partition.Metrics{CutNets: c.vnCut(xhi), SizeU: nU + xhi, SizeW: nW + nN - xhi}
		alt.RatioCut = partition.RatioCutFrom(alt.CutNets, alt.SizeU, alt.SizeW)
		if !better(met, alt) { // ties go to the larger U side, as above
			met = alt
			x = xhi
		}
	}
	if met.SizeU == 0 || met.SizeW == 0 {
		return partition.Metrics{}, false
	}
	c.balX = x
	return met, true
}

// materializeConstrained builds the partition for the completion chosen
// by the last evaluateConstrained call. Must be called before the next
// evaluate on this completer.
func (c *completer) materializeConstrained() *partition.Bipartition {
	sides := make([]partition.Side, c.h.NumModules())
	for v := range sides {
		switch c.assigned[v] {
		case 1:
			sides[v] = sideU
		case 2:
			sides[v] = sideW
		default:
			if c.balX < 0 {
				sides[v] = c.balSide
			} else if int(c.vnPos[v]) < c.balX {
				sides[v] = sideU
			} else {
				sides[v] = sideW
			}
		}
	}
	return partition.FromSides(sides)
}

// sortVNByAffinity orders c.vn by descending affinity to side U
// (affU−affW), module index breaking ties, and records each module's
// position in c.vnPos for materialization.
func (c *completer) sortVNByAffinity() {
	sort.SliceStable(c.vn, func(a, b int) bool {
		va, vb := c.vn[a], c.vn[b]
		da := c.affU[va] - c.affW[va]
		db := c.affU[vb] - c.affW[vb]
		if da != db {
			return da > db
		}
		return va < vb
	})
	for i, v := range c.vn {
		c.vnPos[v] = int32(i)
	}
}

// vnCut counts the nets cut when the first x modules of the sorted V_N
// order join side U and the rest join W, on top of the current winner
// coloring. One pass over the pins.
func (c *completer) vnCut(x int) int {
	cut := 0
	for e := 0; e < c.h.NumNets(); e++ {
		pins := c.h.Pins(e)
		if len(pins) < 2 {
			continue
		}
		var hasU, hasW bool
		for _, v := range pins {
			switch c.assigned[v] {
			case 1:
				hasU = true
			case 2:
				hasW = true
			default:
				if int(c.vnPos[v]) < x {
					hasU = true
				} else {
					hasW = true
				}
			}
			if hasU && hasW {
				break
			}
		}
		if hasU && hasW {
			cut++
		}
	}
	return cut
}
