package fm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

// clustered builds two planted clusters of k modules joined by `bridges`
// 2-pin nets.
func clustered(k, bridges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(2 * k)
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*k; e++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
	}
	return b.Build()
}

func TestBisectFindsPlantedCut(t *testing.T) {
	h := clustered(25, 2, 3)
	res, err := Bisect(h, Options{Starts: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatal("improper partition")
	}
	if d := res.Metrics.SizeU - res.Metrics.SizeW; d > 5 || d < -5 {
		t.Errorf("balance violated: %d vs %d", res.Metrics.SizeU, res.Metrics.SizeW)
	}
	// Planted bisection cuts only the 2 bridges; FM should get close.
	if res.Metrics.CutNets > 6 {
		t.Errorf("cut = %d, want near 2", res.Metrics.CutNets)
	}
}

func TestRatioCutFindsPlantedCut(t *testing.T) {
	h := clustered(25, 1, 7)
	res, err := RatioCut(h, Options{Starts: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatal("improper partition")
	}
	if res.Metrics.CutNets > 4 {
		t.Errorf("cut = %d, want near 1", res.Metrics.CutNets)
	}
	if len(res.StartCosts) != 10 {
		t.Errorf("StartCosts has %d entries, want 10", len(res.StartCosts))
	}
	// Reported metrics must equal the best recorded start cost.
	best := math.Inf(1)
	for _, c := range res.StartCosts {
		if c < best {
			best = c
		}
	}
	if math.Abs(best-res.Metrics.RatioCut) > 1e-12 {
		t.Errorf("best start cost %v != reported ratio %v", best, res.Metrics.RatioCut)
	}
}

func TestMetricsConsistency(t *testing.T) {
	// Whatever FM reports must match a from-scratch evaluation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < 2*n; e++ {
			k := 2 + rng.Intn(4)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		res, err := RatioCut(h, Options{Starts: 2, Seed: seed})
		if err != nil {
			return false
		}
		return partition.Evaluate(h, res.Partition) == res.Metrics
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBisectMetricsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < 2*n; e++ {
			pins := []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
			b.AddNet(pins...)
		}
		h := b.Build()
		res, err := Bisect(h, Options{Starts: 2, Seed: seed, BalanceTolerance: 0.2})
		if err != nil {
			return false
		}
		met := partition.Evaluate(h, res.Partition)
		if met != res.Metrics {
			return false
		}
		slack := int(0.2 * float64(n))
		if slack < 1 {
			slack = 1
		}
		// The constraint is |SizeU − round(n/2)| ≤ slack.
		target := (n + 1) / 2
		d := met.SizeU - target
		if d < 0 {
			d = -d
		}
		return d <= slack+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	h := clustered(15, 2, 9)
	a, err := RatioCut(h, Options{Starts: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RatioCut(h, Options{Starts: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("same seed, different results: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestVarianceAcrossSeeds(t *testing.T) {
	// Different seeds may give different results — the instability the
	// paper contrasts with the deterministic spectral flow. We only check
	// that per-start costs are recorded and finite.
	h := clustered(12, 3, 11)
	res, err := RatioCut(h, Options{Starts: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.StartCosts {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Errorf("start %d cost = %v", i, c)
		}
	}
	if res.Passes < 6 {
		t.Errorf("Passes = %d, want at least one per start", res.Passes)
	}
}

func TestRBipartition(t *testing.T) {
	// Ask for a 25:75 split of a 40-module circuit.
	h := clustered(20, 2, 6)
	res, err := Bisect(h, Options{Starts: 5, Seed: 3, TargetFraction: 0.25, BalanceTolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	want := 10 // 0.25 × 40
	dev := res.Metrics.SizeU - want
	if dev < 0 {
		dev = -dev
	}
	if dev > 2 { // 0.05 × 40 = 2
		t.Errorf("SizeU = %d, want %d ± 2", res.Metrics.SizeU, want)
	}
	// Invalid fractions fall back to 0.5.
	res, err = Bisect(h, Options{Starts: 2, Seed: 1, TargetFraction: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Metrics.SizeU - 20; d > 4 || d < -4 {
		t.Errorf("fallback bisection unbalanced: %d:%d", res.Metrics.SizeU, res.Metrics.SizeW)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	h := clustered(20, 3, 13)
	seq, err := RatioCut(h, Options{Starts: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RatioCut(h, Options{Starts: 6, Seed: 4, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Metrics != par.Metrics {
		t.Errorf("parallel result differs: %+v vs %+v", par.Metrics, seq.Metrics)
	}
	if len(seq.StartCosts) != len(par.StartCosts) {
		t.Fatal("start cost counts differ")
	}
	for i := range seq.StartCosts {
		if seq.StartCosts[i] != par.StartCosts[i] {
			t.Errorf("start %d cost differs: %v vs %v", i, par.StartCosts[i], seq.StartCosts[i])
		}
	}
}

func TestWeightedRatioCutObjective(t *testing.T) {
	// A heavy module changes where the best ratio cut lies: two clusters
	// {0,1,2} and {3,4,5} joined by one bridge, with module 0 weighing 50.
	// By module count the clean 3:3 split is optimal either way, but the
	// weighted objective values it differently; we verify the optimizer
	// reports the weighted cost and that it matches a from-scratch
	// weighted evaluation.
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.AddNet(0, 2)
	b.AddNet(3, 4)
	b.AddNet(4, 5)
	b.AddNet(3, 5)
	b.AddNet(2, 3) // bridge
	b.SetWeight(0, 50)
	h := b.Build()
	res, err := RatioCut(h, Options{Starts: 8, Seed: 2, UseWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CutNets > 1 {
		t.Errorf("cut = %d, want 1 (the bridge)", res.Metrics.CutNets)
	}
	want := partition.WeightedRatioCut(h, res.Partition)
	best := math.Inf(1)
	for _, c := range res.StartCosts {
		if c < best {
			best = c
		}
	}
	if math.Abs(best-want) > 1e-12 {
		t.Errorf("reported weighted cost %v, recomputed %v", best, want)
	}
}

func TestErrorsOnTiny(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.SetNumModules(1)
	h := b.Build()
	if _, err := Bisect(h, Options{}); err == nil {
		t.Error("Bisect accepted 1 module")
	}
	if _, err := RatioCut(h, Options{}); err == nil {
		t.Error("RatioCut accepted 1 module")
	}
}

func TestPassImprovesOrStops(t *testing.T) {
	// Monotone improvement: the final objective never exceeds that of the
	// initial random partition.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < 3*n/2; e++ {
			b.AddNet(rng.Intn(n), rng.Intn(n))
		}
		h := b.Build()

		// Reproduce the initial partition FM builds from this seed.
		initRng := rand.New(rand.NewSource(seed))
		p0 := partition.New(n)
		for v := 0; v < n; v++ {
			if initRng.Intn(2) == 1 {
				p0.Set(v, partition.W)
			}
		}
		init := partition.Evaluate(h, p0)

		res, err := RatioCut(h, Options{Starts: 1, Seed: seed})
		if err != nil {
			return false
		}
		return res.Metrics.RatioCut <= init.RatioCut+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRatioCutSingleStart(b *testing.B) {
	h := clustered(400, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RatioCut(h, Options{Starts: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
