package fm

import (
	"errors"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

// RefinePartition improves an existing bipartition in place with ratio-cut
// FM passes (no random restart — the paper's Section 5 suggestion of
// polishing spectral output with standard iterative techniques). It returns
// the metrics of the refined partition and the number of passes run.
func RefinePartition(h *hypergraph.Hypergraph, p *partition.Bipartition, opts Options) (partition.Metrics, int, error) {
	if h.NumModules() < 2 {
		return partition.Metrics{}, 0, errors.New("fm: need at least 2 modules")
	}
	if p.NumModules() != h.NumModules() {
		return partition.Metrics{}, 0, errors.New("fm: partition size mismatch")
	}
	opts = opts.withDefaults()
	if opts.Fixed != nil && len(opts.Fixed) != h.NumModules() {
		return partition.Metrics{}, 0, errors.New("fm: Fixed mask has wrong length")
	}
	e := newEngine(h, p)
	e.fixed = opts.Fixed
	filter := func(v int) bool {
		return e.sizes[e.side[v]] > 1
	}
	objective := ratioObjective(opts.UseWeights)
	passes := 0
	for pass := 0; pass < opts.MaxPasses; pass++ {
		passes++
		if !e.runPass(filter, objective) {
			break
		}
	}
	return partition.Evaluate(h, p), passes, nil
}
