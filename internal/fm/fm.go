// Package fm implements Fiduccia–Mattheyses iterative partitioning on
// netlist hypergraphs: the classical balance-constrained min-cut bisection,
// and a multi-start ratio-cut optimizer (RCut) patterned on the Wei–Cheng
// RCut1.0 program the paper compares against — random initial partitions,
// gain-driven shifting passes with the prefix chosen by ratio-cut value,
// and best-of-N reporting.
package fm

import (
	"errors"
	"math"
	"math/rand"
	"sync"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

// Options configures an FM run. The zero value gives a balanced bisection
// with a 10% tolerance and a single start.
type Options struct {
	// Starts is the number of random initial partitions tried (best kept).
	// Default 1.
	Starts int
	// MaxPasses bounds the improvement passes per start. Default 16.
	MaxPasses int
	// BalanceTolerance is the allowed deviation from the target split as a
	// fraction of the module count, used only by Bisect. Default 0.1.
	BalanceTolerance float64
	// TargetFraction is the desired |U|/n for Bisect — the r of the
	// Fiduccia–Mattheyses r-bipartition formulation the paper's Section 1.1
	// cites. Default 0.5 (plain bisection). Must lie in (0, 1).
	TargetFraction float64
	// UseWeights makes RatioCut optimize the area-weighted ratio cut
	// cut/(w(U)·w(W)) instead of the module-count form.
	UseWeights bool
	// Parallel runs the independent random starts on separate goroutines.
	// Results are identical to the sequential run for the same Seed (each
	// start derives its own sub-seed).
	Parallel bool
	// Fixed marks modules that must stay on their current side (I/O pads,
	// pre-placed macros). Used by RefinePartition; multi-start entry points
	// ignore it because their random initial sides would be meaningless for
	// pinned modules.
	Fixed []bool
	// Seed seeds the initial random partitions.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Starts <= 0 {
		o.Starts = 1
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 16
	}
	if o.BalanceTolerance <= 0 {
		o.BalanceTolerance = 0.1
	}
	if o.TargetFraction <= 0 || o.TargetFraction >= 1 {
		o.TargetFraction = 0.5
	}
	return o
}

// Result reports the best partition found together with run statistics.
type Result struct {
	Partition *partition.Bipartition
	Metrics   partition.Metrics
	// Passes is the total number of improvement passes executed across all
	// starts.
	Passes int
	// StartCosts records the final objective of each start (cut nets for
	// Bisect, ratio cut for RatioCut), exposing the run-to-run variance
	// that motivates the paper's stability argument.
	StartCosts []float64
}

// engine holds the bucket-list gain structure for one pass sequence.
type engine struct {
	h       *hypergraph.Hypergraph
	side    []partition.Side
	pinsOnU []int
	cut     int
	sizes   [2]int

	weights []int
	wsizes  [2]int

	gain    []int
	locked  []bool
	fixed   []bool // immovable modules (nil = none)
	maxDeg  int
	buckets [][]int // gain+maxDeg -> stack of candidate modules (lazy)
	inBkt   []int   // scheduled bucket index per module, -1 if none
	maxPtr  int
}

func newEngine(h *hypergraph.Hypergraph, p *partition.Bipartition) *engine {
	n := h.NumModules()
	e := &engine{
		h:       h,
		side:    p.Sides(),
		pinsOnU: make([]int, h.NumNets()),
		gain:    make([]int, n),
		locked:  make([]bool, n),
		inBkt:   make([]int, n),
	}
	e.weights = make([]int, n)
	for v := 0; v < n; v++ {
		e.weights[v] = h.ModuleWeight(v)
		e.sizes[e.side[v]]++
		e.wsizes[e.side[v]] += e.weights[v]
		if d := h.Degree(v); d > e.maxDeg {
			e.maxDeg = d
		}
	}
	for net := 0; net < h.NumNets(); net++ {
		onU := 0
		for _, v := range h.Pins(net) {
			if e.side[v] == partition.U {
				onU++
			}
		}
		e.pinsOnU[net] = onU
		if onU > 0 && onU < h.NetSize(net) {
			e.cut++
		}
	}
	e.buckets = make([][]int, 2*e.maxDeg+1)
	return e
}

// computeGain returns the FM cell gain of v from the current state.
func (e *engine) computeGain(v int) int {
	from := e.side[v]
	g := 0
	for _, net := range e.h.Nets(v) {
		size := e.h.NetSize(net)
		if size < 2 {
			continue
		}
		onFrom := e.pinsOnU[net]
		if from == partition.W {
			onFrom = size - onFrom
		}
		if onFrom == 1 {
			g++
		} else if onFrom == size {
			g--
		}
	}
	return g
}

// initPass unlocks every module and rebuilds the gain buckets.
func (e *engine) initPass() {
	for i := range e.buckets {
		e.buckets[i] = e.buckets[i][:0]
	}
	e.maxPtr = 0
	for v := 0; v < e.h.NumModules(); v++ {
		if e.fixed != nil && e.fixed[v] {
			e.locked[v] = true // pinned for the whole pass
			continue
		}
		e.locked[v] = false
		e.gain[v] = e.computeGain(v)
		e.push(v)
	}
}

func (e *engine) push(v int) {
	idx := e.gain[v] + e.maxDeg
	e.buckets[idx] = append(e.buckets[idx], v)
	e.inBkt[v] = idx
	if idx > e.maxPtr {
		e.maxPtr = idx
	}
}

// pop returns the highest-gain unlocked module passing the filter, or −1.
// Entries are lazily invalidated: a module whose recorded bucket no longer
// matches its gain is stale and skipped.
func (e *engine) pop(filter func(v int) bool) int {
	for idx := e.maxPtr; idx >= 0; idx-- {
		bkt := e.buckets[idx]
		for len(bkt) > 0 {
			v := bkt[len(bkt)-1]
			bkt = bkt[:len(bkt)-1]
			if e.locked[v] || e.inBkt[v] != idx || e.gain[v]+e.maxDeg != idx {
				continue // stale
			}
			if !filter(v) {
				// Keep v for later; it stays out of the bucket for this
				// scan but must be re-pushed for subsequent pops.
				defer e.push(v)
				continue
			}
			e.buckets[idx] = bkt
			e.maxPtr = idx
			return v
		}
		e.buckets[idx] = bkt
	}
	return -1
}

// reschedule updates v's gain by delta and re-files it.
func (e *engine) reschedule(v, delta int) {
	e.gain[v] += delta
	if !e.locked[v] {
		e.push(v)
	}
}

// move executes the FM move of v with the standard incremental gain
// updates, locks v, and returns nothing; cut and sizes are kept current.
func (e *engine) move(v int) {
	from := e.side[v]
	to := from.Opposite()
	for _, net := range e.h.Nets(v) {
		size := e.h.NetSize(net)
		if size < 2 {
			continue
		}
		onTo := e.pinsOnU[net]
		if to == partition.W {
			onTo = size - onTo
		}
		// Before-move rules.
		if onTo == 0 {
			for _, u := range e.h.Pins(net) {
				if !e.locked[u] && u != v {
					e.reschedule(u, +1)
				}
			}
		} else if onTo == 1 {
			for _, u := range e.h.Pins(net) {
				if u != v && e.side[u] == to && !e.locked[u] {
					e.reschedule(u, -1)
					break
				}
			}
		}
		// Count update.
		wasCut := e.pinsOnU[net] > 0 && e.pinsOnU[net] < size
		if from == partition.U {
			e.pinsOnU[net]--
		} else {
			e.pinsOnU[net]++
		}
		isCut := e.pinsOnU[net] > 0 && e.pinsOnU[net] < size
		if wasCut && !isCut {
			e.cut--
		} else if !wasCut && isCut {
			e.cut++
		}
		// After-move rules.
		onFrom := e.pinsOnU[net]
		if from == partition.W {
			onFrom = size - onFrom
		}
		if onFrom == 0 {
			for _, u := range e.h.Pins(net) {
				if !e.locked[u] && u != v {
					e.reschedule(u, -1)
				}
			}
		} else if onFrom == 1 {
			for _, u := range e.h.Pins(net) {
				if u != v && e.side[u] == from && !e.locked[u] {
					e.reschedule(u, +1)
					break
				}
			}
		}
	}
	e.side[v] = to
	e.sizes[from]--
	e.sizes[to]++
	e.wsizes[from] -= e.weights[v]
	e.wsizes[to] += e.weights[v]
	e.locked[v] = true
}

// passObjective abstracts what a pass optimizes: it scores the engine's
// current state and smaller is better.
type passObjective func(e *engine) float64

// runPass performs one full FM pass under the given move filter and
// objective, then rolls back to the best prefix. It reports whether the
// objective improved relative to the pass start.
func (e *engine) runPass(filter func(v int) bool, objective passObjective) bool {
	e.initPass()
	startScore := objective(e)
	bestScore := startScore
	bestPrefix := 0
	moves := make([]int, 0, e.h.NumModules())
	for {
		v := e.pop(filter)
		if v < 0 {
			break
		}
		e.move(v)
		moves = append(moves, v)
		if s := objective(e); s < bestScore {
			bestScore = s
			bestPrefix = len(moves)
		}
	}
	// Roll back moves beyond the best prefix.
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		v := moves[i]
		e.locked[v] = false // unlock so gain updates propagate symmetrically
		e.undoMove(v)
	}
	return bestScore < startScore
}

// undoMove reverses a move without gain bookkeeping (used during rollback,
// after which initPass rebuilds gains from scratch anyway).
func (e *engine) undoMove(v int) {
	from := e.side[v]
	to := from.Opposite()
	for _, net := range e.h.Nets(v) {
		size := e.h.NetSize(net)
		wasCut := e.pinsOnU[net] > 0 && e.pinsOnU[net] < size
		if from == partition.U {
			e.pinsOnU[net]--
		} else {
			e.pinsOnU[net]++
		}
		isCut := e.pinsOnU[net] > 0 && e.pinsOnU[net] < size
		if size >= 2 {
			if wasCut && !isCut {
				e.cut--
			} else if !wasCut && isCut {
				e.cut++
			}
		}
	}
	e.side[v] = to
	e.sizes[from]--
	e.sizes[to]++
	e.wsizes[from] -= e.weights[v]
	e.wsizes[to] += e.weights[v]
}

// randomPartition assigns each module a uniform random side.
func randomPartition(n int, rng *rand.Rand) *partition.Bipartition {
	p := partition.New(n)
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 1 {
			p.Set(v, partition.W)
		}
	}
	return p
}

// Bisect runs multi-start FM min-cut r-bipartition: side U must hold
// TargetFraction of the modules within BalanceTolerance·n (the classical
// bisection is TargetFraction = 0.5).
func Bisect(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	opts = opts.withDefaults()
	n := h.NumModules()
	if n < 2 {
		return Result{}, errors.New("fm: need at least 2 modules")
	}
	slack := int(opts.BalanceTolerance * float64(n))
	if slack < 1 {
		slack = 1
	}
	target := int(opts.TargetFraction*float64(n) + 0.5)
	objective := func(e *engine) float64 {
		if abs(e.sizes[0]-target) > slack {
			return math.Inf(1) // outside balance: never selectable as prefix
		}
		return float64(e.cut)
	}
	return runMultiStart(h, opts, objective, func(e *engine) func(int) bool {
		return func(v int) bool {
			dev := e.sizes[0] - target
			newDev := dev + 1
			if e.side[v] == partition.U {
				newDev = dev - 1
			}
			// Allow any move toward the target; otherwise keep the
			// excursion within the tolerance (+2 for in-pass exploration —
			// the objective's +Inf outside tolerance guards the prefix).
			return abs(newDev) < abs(dev) || abs(newDev) <= slack+2
		}
	})
}

// RatioCut runs the RCut-style multi-start ratio-cut optimizer.
func RatioCut(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if h.NumModules() < 2 {
		return Result{}, errors.New("fm: need at least 2 modules")
	}
	objective := ratioObjective(opts.UseWeights)
	return runMultiStart(h, opts, objective, func(e *engine) func(int) bool {
		return func(v int) bool {
			return e.sizes[e.side[v]] > 1 // keep both sides non-empty
		}
	})
}

// ratioObjective builds the ratio-cut pass objective, optionally using
// module area weights in the denominator.
func ratioObjective(useWeights bool) passObjective {
	if useWeights {
		return func(e *engine) float64 {
			return partition.RatioCutFrom(e.cut, e.wsizes[0], e.wsizes[1])
		}
	}
	return func(e *engine) float64 {
		return partition.RatioCutFrom(e.cut, e.sizes[0], e.sizes[1])
	}
}

// startSeed derives the sub-seed of one random start, making results
// identical whether the starts run sequentially or in parallel.
func startSeed(seed int64, start int) int64 {
	return seed + int64(start)*0x9E3779B9
}

func runMultiStart(h *hypergraph.Hypergraph, opts Options, objective passObjective, mkFilter func(*engine) func(int) bool) (Result, error) {
	type startResult struct {
		p      *partition.Bipartition
		met    partition.Metrics
		score  float64
		passes int
	}
	results := make([]startResult, opts.Starts)
	runOne := func(s int) {
		rng := rand.New(rand.NewSource(startSeed(opts.Seed, s)))
		p := randomPartition(h.NumModules(), rng)
		e := newEngine(h, p)
		filter := mkFilter(e)
		passes := 0
		for pass := 0; pass < opts.MaxPasses; pass++ {
			passes++
			if !e.runPass(filter, objective) {
				break
			}
		}
		results[s] = startResult{
			p:      p,
			met:    partition.Evaluate(h, p),
			score:  objective(e),
			passes: passes,
		}
	}
	if opts.Parallel {
		var wg sync.WaitGroup
		for s := 0; s < opts.Starts; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				runOne(s)
			}(s)
		}
		wg.Wait()
	} else {
		for s := 0; s < opts.Starts; s++ {
			runOne(s)
		}
	}

	var best Result
	bestScore := math.Inf(1)
	for _, r := range results {
		best.Passes += r.passes
		best.StartCosts = append(best.StartCosts, r.score)
		if r.score < bestScore {
			bestScore = r.score
			best.Partition = r.p
			best.Metrics = r.met
		}
	}
	if best.Partition == nil {
		return Result{}, errors.New("fm: no start produced a feasible partition")
	}
	return best, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
