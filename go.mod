module igpart

go 1.22
