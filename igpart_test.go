package igpart

import (
	"path/filepath"
	"testing"
)

// testCircuit generates a small clustered benchmark for facade tests.
func testCircuit(t *testing.T) *Netlist {
	t.Helper()
	cfg, ok := Benchmark("Prim1")
	if !ok {
		t.Fatal("Prim1 preset missing")
	}
	h, err := Generate(cfg.Scaled(0.25))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestFacadeIGMatch(t *testing.T) {
	h := testCircuit(t)
	res, err := IGMatch(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatal("improper partition")
	}
	if res.Metrics.CutNets > res.MatchingBound {
		t.Errorf("cut %d exceeds matching bound %d", res.Metrics.CutNets, res.MatchingBound)
	}
	if got := Evaluate(h, res.Partition); got != res.Metrics {
		t.Errorf("metrics mismatch: %+v vs %+v", got, res.Metrics)
	}
	if len(res.NetOrder) != h.NumNets() {
		t.Errorf("order length %d", len(res.NetOrder))
	}
}

func TestFacadeAllAlgorithms(t *testing.T) {
	h := testCircuit(t)
	run := func(name string, f func() (Result, error)) {
		t.Run(name, func(t *testing.T) {
			res, err := f()
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
				t.Error("improper partition")
			}
			if got := Evaluate(h, res.Partition); got != res.Metrics {
				t.Errorf("metrics mismatch: %+v vs %+v", got, res.Metrics)
			}
		})
	}
	run("IGVote", func() (Result, error) { return IGVote(h) })
	run("EIG1", func() (Result, error) { return EIG1(h) })
	run("RCut", func() (Result, error) { return RCut(h, 3, 1) })
	run("KL", func() (Result, error) { return KL(h, 1) })
	run("Refined", func() (Result, error) { return Refined(h) })
	run("Condensed", func() (Result, error) { return Condensed(h) })
	run("IGDiam", func() (Result, error) { return IGDiam(h) })
	run("Anneal", func() (Result, error) { return Anneal(h, 1) })
	run("MinCut", func() (Result, error) { return MinCut(h) })
}

func TestFacadeMinNetCutBetween(t *testing.T) {
	h := testCircuit(t)
	res, flow, err := MinNetCutBetween(h, 0, h.NumModules()-1)
	if err != nil {
		t.Fatal(err)
	}
	if flow != res.Metrics.CutNets {
		t.Errorf("flow %d != cut %d", flow, res.Metrics.CutNets)
	}
	if res.Partition.Side(0) == res.Partition.Side(h.NumModules()-1) {
		t.Error("endpoints not separated")
	}
	cutSeen := false
	for e := 0; e < h.NumNets() && !cutSeen; e++ {
		cutSeen = IsNetCut(h, res.Partition, e)
	}
	if !cutSeen && flow > 0 {
		t.Error("IsNetCut found no cut net despite positive flow")
	}
}

func TestFacadeIGMatchOptions(t *testing.T) {
	h := testCircuit(t)
	for _, scheme := range []WeightScheme{SchemePaper, SchemeUnit, SchemeOverlap, SchemeMinSize} {
		res, err := IGMatch(h, IGMatchOptions{Scheme: scheme})
		if err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
			t.Errorf("scheme %v: improper partition", scheme)
		}
	}
	if _, err := IGMatch(h, IGMatchOptions{Threshold: 4, RecursionDepth: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBuilderAndIO(t *testing.T) {
	b := NewBuilder()
	b.AddNamedNet("clk", 0, 1, 2, 3)
	b.AddNamedNet("d0", 0, 1)
	b.AddNamedNet("d1", 2, 3)
	h := b.Build()
	path := filepath.Join(t.TempDir(), "tiny.hgr")
	if err := Save(path, h); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNets() != 3 || got.NumModules() != 4 {
		t.Errorf("reload: %d nets %d modules", got.NumNets(), got.NumModules())
	}
}

func TestFacadeBenchmarkRegistry(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 9 {
		t.Fatalf("%d benchmark presets", len(names))
	}
	if _, ok := Benchmark("definitely-not-a-benchmark"); ok {
		t.Error("unknown preset accepted")
	}
}

func TestFacadeSparsity(t *testing.T) {
	h := testCircuit(t)
	s := CompareSparsity(h)
	if s.CliqueNonzeros <= 0 || s.IGNonzeros <= 0 {
		t.Errorf("degenerate sparsity: %+v", s)
	}
}

func TestFacadeMultiway(t *testing.T) {
	h := testCircuit(t)
	res, err := Multiway(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("K = %d", res.K)
	}
	re := EvaluateMultiway(h, res.Part, res.K)
	if re.SpanningNets != res.SpanningNets || re.Connectivity != res.Connectivity {
		t.Error("re-evaluation mismatch")
	}
}

func TestFacadePlacement(t *testing.T) {
	h := testCircuit(t)
	p1, lam, err := PlaceHall1D(h)
	if err != nil {
		t.Fatal(err)
	}
	if lam < 0 || len(p1.X) != h.NumModules() {
		t.Errorf("Hall1D: λ=%v len=%d", lam, len(p1.X))
	}
	p2, lams, err := PlaceHall2D(h)
	if err != nil {
		t.Fatal(err)
	}
	if lams[1] < lams[0]-1e-9 {
		t.Errorf("eigenvalues out of order: %v", lams)
	}
	if HPWL(h, p2) <= 0 {
		t.Error("zero HPWL for a connected circuit")
	}
	nets, modules, err := PlaceNetsAsPoints(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets.X) != h.NumNets() || len(modules.X) != h.NumModules() {
		t.Error("nets-as-points sizes wrong")
	}
}

func TestFacadeBookshelf(t *testing.T) {
	h := testCircuit(t)
	dir := t.TempDir()
	np := filepath.Join(dir, "c.nodes")
	ep := filepath.Join(dir, "c.nets")
	if err := SaveBookshelf(np, ep, h); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBookshelf(np, ep)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNets() != h.NumNets() || got.NumPins() != h.NumPins() {
		t.Errorf("bookshelf round trip: %d/%d vs %d/%d",
			got.NumNets(), got.NumPins(), h.NumNets(), h.NumPins())
	}
}

func TestFacadeDeterminism(t *testing.T) {
	h := testCircuit(t)
	a, err := IGMatch(h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := IGMatch(h)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics || a.BestRank != b.BestRank {
		t.Error("IGMatch not deterministic")
	}
}
